#ifndef SQLOG_LOG_LOG_STREAM_H_
#define SQLOG_LOG_LOG_STREAM_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "log/record.h"
#include "util/csv.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace sqlog::log {

/// The CSV header of the query-log file format (shared by LogIo and the
/// streaming reader/writer).
inline constexpr const char* kLogCsvHeader =
    "seq,timestamp_ms,user,session,row_count,truth,statement";
inline constexpr size_t kLogCsvFieldCount = 7;

/// True when `line` looks like the file-format header (first column name
/// in place of a numeric seq).
bool IsLogCsvHeaderLine(std::string_view line);

/// Assembles a LogRecord from one parsed CSV row, validating every
/// numeric field strictly: non-numeric, partially-numeric, and
/// overflowing values are ParseErrors naming the 1-based `line_number`
/// and the offending field — never silently read as 0.
Result<LogRecord> RecordFromCsvFields(std::vector<std::string>&& fields,
                                      uint64_t line_number);

/// Appends one CSV row (no trailing work left to the caller: includes
/// the '\n') for `record`, with `seq` written in place of record.seq.
/// Byte-identical to the rows LogIo::ToCsv emits.
void AppendCsvRow(const LogRecord& record, uint64_t seq, std::string& out);

/// Format-agnostic record-stream seams. The CSV LogReader/LogWriter and
/// the binary BinLogReader/BinLogWriter (log/binlog.h) both implement
/// them, so the streaming pipeline and the CLI can ingest or emit either
/// format through one code path (LogIo picks the implementation by
/// magic-byte detection).
class RecordReader {
 public:
  virtual ~RecordReader() = default;

  /// Opens `path` for reading; IoError when it cannot be opened (a
  /// structurally invalid file may also fail here with a ParseError).
  virtual Status Open(const std::string& path) = 0;

  /// Reads the next record into `*record`. Sets `*eof` (and leaves
  /// `*record` untouched) when the input is exhausted.
  virtual Status ReadRecord(LogRecord* record, bool* eof) = 0;

  /// Records decoded so far.
  virtual uint64_t records_read() const = 0;
};

class RecordWriter {
 public:
  virtual ~RecordWriter() = default;

  /// Opens `path` for writing (truncates); IoError on failure.
  virtual Status Open(const std::string& path) = 0;

  /// Appends one record.
  virtual Status Append(const LogRecord& record) = 0;

  /// Finalizes and closes the output. Append afterwards is an error;
  /// Open may be called again.
  virtual Status Close() = 0;

  virtual uint64_t records_written() const = 0;
};

/// Options for LogReader.
struct LogReaderOptions {
  /// Records per ReadBatch call.
  size_t batch_size = 4096;
  /// File-read granularity; memory held by the reader is O(chunk_bytes +
  /// longest logical line).
  size_t chunk_bytes = 1 << 20;
};

/// Chunked, bounded-memory CSV log reader: records are decoded
/// incrementally from fixed-size file reads, so peak memory is
/// independent of file size. Quoted multi-line statements are handled
/// across chunk boundaries (util::Csv::LineSplitter). The header is
/// recognized only on the first logical line; a stray header mid-file is
/// a ParseError, as is any malformed numeric field or a final record
/// truncated inside a quoted field.
class LogReader : public RecordReader {
 public:
  explicit LogReader(LogReaderOptions options = {});

  LogReader(LogReader&&) = default;
  LogReader& operator=(LogReader&&) = default;

  /// Opens `path` for reading; IoError when it cannot be opened.
  Status Open(const std::string& path) override;

  /// Reads the next record into `*record`. Sets `*eof` (and leaves
  /// `*record` untouched) when the input is exhausted.
  Status ReadRecord(LogRecord* record, bool* eof) override;

  /// Clears `*batch` and fills it with up to options.batch_size records.
  /// An empty batch after an OK return means end of input.
  Status ReadBatch(std::vector<LogRecord>* batch);

  /// True once the underlying file is fully consumed.
  bool exhausted() const { return exhausted_; }

  /// Records decoded so far (excluding the header and blank lines).
  uint64_t records_read() const override { return records_read_; }

 private:
  /// Pulls the next logical line; false at end of input.
  Status NextLine(std::string* line, bool* got);

  LogReaderOptions options_ SQLOG_CONST_AFTER_INIT;
  std::ifstream in_ SQLOG_SHARD_LOCAL;
  std::vector<char> chunk_ SQLOG_SHARD_LOCAL;
  Csv::LineSplitter splitter_ SQLOG_SHARD_LOCAL;
  bool source_drained_ SQLOG_SHARD_LOCAL = false;  // file fully fed to the splitter
  bool exhausted_ SQLOG_SHARD_LOCAL = false;       // no more records will be produced
  uint64_t line_number_ SQLOG_SHARD_LOCAL = 0;     // 1-based logical line counter
  uint64_t records_read_ SQLOG_SHARD_LOCAL = 0;
};

/// Options for LogWriter.
struct LogWriterOptions {
  /// Emit the header as the first line.
  bool write_header = true;
  /// Write seq = output position instead of record.seq — the streaming
  /// equivalent of QueryLog::Renumber() before LogIo::WriteFile().
  bool renumber = false;
  /// Buffered bytes before an implicit Flush.
  size_t buffer_bytes = 1 << 20;
};

/// Incremental CSV log writer: records are appended one at a time into a
/// bounded buffer, so a log of any size can be written with O(buffer)
/// memory. The byte stream is identical to LogIo::WriteFile of the same
/// record sequence (after Renumber() when options.renumber is set).
class LogWriter : public RecordWriter {
 public:
  explicit LogWriter(LogWriterOptions options = {});
  ~LogWriter() override;

  LogWriter(LogWriter&&) = default;
  LogWriter& operator=(LogWriter&&) = default;

  /// Opens `path` for writing (truncates); IoError on failure.
  Status Open(const std::string& path) override;

  /// Appends one record.
  Status Append(const LogRecord& record) override;

  /// Writes buffered bytes through to the file.
  Status Flush();

  /// Flushes and closes; Append afterwards is an error. Open may be
  /// called again. Destruction without Close() flushes best-effort.
  Status Close() override;

  uint64_t records_written() const override { return records_written_; }

 private:
  LogWriterOptions options_ SQLOG_CONST_AFTER_INIT;
  std::ofstream out_ SQLOG_SHARD_LOCAL;
  std::string buffer_ SQLOG_SHARD_LOCAL;
  bool open_ SQLOG_SHARD_LOCAL = false;
  uint64_t records_written_ SQLOG_SHARD_LOCAL = 0;
};

}  // namespace sqlog::log

#endif  // SQLOG_LOG_LOG_STREAM_H_
