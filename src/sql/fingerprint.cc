#include "sql/fingerprint.h"

#include "util/simd.h"
#include "util/string_util.h"

namespace sqlog::sql {

namespace {

/// True when token `i` is a number the parser folds into the template
/// rather than a per-record constant: the count of `TOP 5` / `TOP (5)`.
/// Mirrors the parser's TOP production (and the fuzz mutator's
/// IsTopCount), which are the only places a number shapes the parse.
bool IsStructuralNumber(const TokenStream& tokens, size_t i) {
  auto is_top = [&](size_t k) {
    return tokens[k].Is(TokenType::kIdentifier) && EqualsIgnoreCase(tokens[k].text, "top");
  };
  if (i >= 1 && is_top(i - 1)) return true;
  if (i >= 2 && tokens[i - 1].Is(TokenType::kLParen) && is_top(i - 2)) return true;
  return false;
}

/// Length-delimits a payload so adjacent tokens cannot alias: 4 bytes of
/// little-endian length, then the bytes.
// sqlog-lint: allow(R10 appends into the caller-owned key buffer, which the fingerprint entry points clear and reuse across statements; growth is amortized)
void AppendDelimited(std::string_view payload, std::string* key) {
  uint32_t n = static_cast<uint32_t>(payload.size());
  key->push_back(static_cast<char>(n & 0xff));
  key->push_back(static_cast<char>((n >> 8) & 0xff));
  key->push_back(static_cast<char>((n >> 16) & 0xff));
  key->push_back(static_cast<char>((n >> 24) & 0xff));
  key->append(payload);
}

// sqlog-lint: allow(R10 appends into the caller-owned key buffer; see AppendDelimited)
void AppendFolded(std::string_view text, std::string* key) {
  uint32_t n = static_cast<uint32_t>(text.size());
  key->push_back(static_cast<char>(n & 0xff));
  key->push_back(static_cast<char>((n >> 8) & 0xff));
  key->push_back(static_cast<char>((n >> 16) & 0xff));
  key->push_back(static_cast<char>((n >> 24) & 0xff));
  // ASCII-only fold via the dispatched kernel; previously std::tolower,
  // whose result depends on the global locale for bytes >= 0x80.
  simd::AppendLowered(text, key);
}

}  // namespace

// sqlog-lint: allow(R10 appends into the caller-owned key buffer; TemplateStore reuses one key string per shard)
void AppendNormalizedKey(const TokenStream& tokens, std::string* key) {
  for (size_t i = 0; i < tokens.size(); ++i) {
    const Token& token = tokens[i];
    key->push_back(static_cast<char>(token.type));
    switch (token.type) {
      case TokenType::kIdentifier:
      case TokenType::kVariable:
        AppendFolded(token.text, key);
        break;
      case TokenType::kNumber:
        if (IsStructuralNumber(tokens, i)) AppendDelimited(token.text, key);
        break;
      case TokenType::kString:
      default:
        break;  // the type byte alone: placeholder or punctuation
    }
  }
}

TokenFingerprint FingerprintKey(std::string_view key) {
  // Block-wise 128-bit hash (16 bytes/round) instead of the former pair
  // of byte-at-a-time FNV-1a passes. The fingerprint is an in-memory
  // parse-cache key, never serialized — unlike QueryTemplate::fingerprint
  // and the binlog checksums, which stay on Fnv1a64 (wire format).
  simd::Hash128 h = simd::HashKey128(key);
  TokenFingerprint fp;
  fp.lo = h.lo;
  fp.hi = h.hi;
  return fp;
}

// sqlog-lint: allow(R10 builds and returns the per-statement placeholder index vector; one amortized allocation per statement by design)
std::vector<size_t> PlaceholderedTokenIndices(const TokenStream& tokens) {
  std::vector<size_t> indices;
  for (size_t i = 0; i < tokens.size(); ++i) {
    const Token& token = tokens[i];
    if (token.Is(TokenType::kString) ||
        (token.Is(TokenType::kNumber) && !IsStructuralNumber(tokens, i))) {
      indices.push_back(i);
    }
  }
  return indices;
}

}  // namespace sqlog::sql
