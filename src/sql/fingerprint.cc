#include "sql/fingerprint.h"

#include <cctype>

#include "util/hash.h"
#include "util/string_util.h"

namespace sqlog::sql {

namespace {

/// True when token `i` is a number the parser folds into the template
/// rather than a per-record constant: the count of `TOP 5` / `TOP (5)`.
/// Mirrors the parser's TOP production (and the fuzz mutator's
/// IsTopCount), which are the only places a number shapes the parse.
bool IsStructuralNumber(const TokenStream& tokens, size_t i) {
  auto is_top = [&](size_t k) {
    return tokens[k].Is(TokenType::kIdentifier) && EqualsIgnoreCase(tokens[k].text, "top");
  };
  if (i >= 1 && is_top(i - 1)) return true;
  if (i >= 2 && tokens[i - 1].Is(TokenType::kLParen) && is_top(i - 2)) return true;
  return false;
}

/// Length-delimits a payload so adjacent tokens cannot alias: 4 bytes of
/// little-endian length, then the bytes.
void AppendDelimited(std::string_view payload, std::string* key) {
  uint32_t n = static_cast<uint32_t>(payload.size());
  key->push_back(static_cast<char>(n & 0xff));
  key->push_back(static_cast<char>((n >> 8) & 0xff));
  key->push_back(static_cast<char>((n >> 16) & 0xff));
  key->push_back(static_cast<char>((n >> 24) & 0xff));
  key->append(payload);
}

void AppendFolded(std::string_view text, std::string* key) {
  uint32_t n = static_cast<uint32_t>(text.size());
  key->push_back(static_cast<char>(n & 0xff));
  key->push_back(static_cast<char>((n >> 8) & 0xff));
  key->push_back(static_cast<char>((n >> 16) & 0xff));
  key->push_back(static_cast<char>((n >> 24) & 0xff));
  for (char c : text) {
    key->push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
}

}  // namespace

void AppendNormalizedKey(const TokenStream& tokens, std::string* key) {
  for (size_t i = 0; i < tokens.size(); ++i) {
    const Token& token = tokens[i];
    key->push_back(static_cast<char>(token.type));
    switch (token.type) {
      case TokenType::kIdentifier:
      case TokenType::kVariable:
        AppendFolded(token.text, key);
        break;
      case TokenType::kNumber:
        if (IsStructuralNumber(tokens, i)) AppendDelimited(token.text, key);
        break;
      case TokenType::kString:
      default:
        break;  // the type byte alone: placeholder or punctuation
    }
  }
}

TokenFingerprint FingerprintKey(std::string_view key) {
  TokenFingerprint fp;
  fp.lo = Fnv1a64(key);
  fp.hi = Fnv1a64(key, 0x9ae16a3b2f90404fULL);
  return fp;
}

std::vector<size_t> PlaceholderedTokenIndices(const TokenStream& tokens) {
  std::vector<size_t> indices;
  for (size_t i = 0; i < tokens.size(); ++i) {
    const Token& token = tokens[i];
    if (token.Is(TokenType::kString) ||
        (token.Is(TokenType::kNumber) && !IsStructuralNumber(tokens, i))) {
      indices.push_back(i);
    }
  }
  return indices;
}

}  // namespace sqlog::sql
