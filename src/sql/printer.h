#ifndef SQLOG_SQL_PRINTER_H_
#define SQLOG_SQL_PRINTER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "sql/ast.h"

namespace sqlog::sql {

/// Position of one concretely printed literal inside a Print result:
/// `[begin, end)` spans the literal's rendered text (including quotes
/// for strings) in the returned string.
struct LiteralSlot {
  const Expr* expr = nullptr;  // the LiteralExpr that produced the text
  size_t begin = 0;
  size_t end = 0;
};

/// Controls how an AST is rendered back to SQL text.
struct PrintOptions {
  /// Lower-cases identifiers and keywords and normalizes spacing, so two
  /// structurally equal queries print identically (Def. 5 equality is
  /// string equality of canonical prints).
  bool canonical = true;
  /// Replaces literals with `<num>` / `<str>` / `<null>` placeholders,
  /// producing the *skeleton* form of Sec. 4.1.2. Variables (`@x`) count
  /// as parameters and also collapse to placeholders.
  bool placeholders = false;
  /// When set (and `placeholders` is off), every number and string
  /// literal printed appends a LiteralSlot locating its text in the
  /// returned string, in print order. NULL literals and variables are
  /// not recorded. The parse cache uses this to split clause text into
  /// constant pieces and literal slots.
  std::vector<LiteralSlot>* literal_sink = nullptr;
};

/// Renders a full statement.
std::string Print(const SelectStatement& stmt, const PrintOptions& options = {});

/// Renders one expression.
std::string Print(const Expr& expr, const PrintOptions& options = {});

/// Renders the select list only (the SC / SSC of Definitions 2–3).
std::string PrintSelectClause(const SelectStatement& stmt, const PrintOptions& options = {});

/// Renders the FROM clause only (the FC / SFC).
std::string PrintFromClause(const SelectStatement& stmt, const PrintOptions& options = {});

/// Renders the WHERE clause only (the WC / SWC); empty string when the
/// statement has no WHERE.
std::string PrintWhereClause(const SelectStatement& stmt, const PrintOptions& options = {});

/// Renders GROUP BY / HAVING / ORDER BY / TOP / DISTINCT decorations that
/// are not part of the three core clauses but still distinguish templates.
std::string PrintTailClauses(const SelectStatement& stmt, const PrintOptions& options = {});

}  // namespace sqlog::sql

#endif  // SQLOG_SQL_PRINTER_H_
