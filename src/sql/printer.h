#ifndef SQLOG_SQL_PRINTER_H_
#define SQLOG_SQL_PRINTER_H_

#include <string>

#include "sql/ast.h"

namespace sqlog::sql {

/// Controls how an AST is rendered back to SQL text.
struct PrintOptions {
  /// Lower-cases identifiers and keywords and normalizes spacing, so two
  /// structurally equal queries print identically (Def. 5 equality is
  /// string equality of canonical prints).
  bool canonical = true;
  /// Replaces literals with `<num>` / `<str>` / `<null>` placeholders,
  /// producing the *skeleton* form of Sec. 4.1.2. Variables (`@x`) count
  /// as parameters and also collapse to placeholders.
  bool placeholders = false;
};

/// Renders a full statement.
std::string Print(const SelectStatement& stmt, const PrintOptions& options = {});

/// Renders one expression.
std::string Print(const Expr& expr, const PrintOptions& options = {});

/// Renders the select list only (the SC / SSC of Definitions 2–3).
std::string PrintSelectClause(const SelectStatement& stmt, const PrintOptions& options = {});

/// Renders the FROM clause only (the FC / SFC).
std::string PrintFromClause(const SelectStatement& stmt, const PrintOptions& options = {});

/// Renders the WHERE clause only (the WC / SWC); empty string when the
/// statement has no WHERE.
std::string PrintWhereClause(const SelectStatement& stmt, const PrintOptions& options = {});

/// Renders GROUP BY / HAVING / ORDER BY / TOP / DISTINCT decorations that
/// are not part of the three core clauses but still distinguish templates.
std::string PrintTailClauses(const SelectStatement& stmt, const PrintOptions& options = {});

}  // namespace sqlog::sql

#endif  // SQLOG_SQL_PRINTER_H_
