#include "sql/parser.h"

#include <cstdlib>

#include "sql/lexer.h"
#include "util/string_util.h"

namespace sqlog::sql {

namespace {

/// Recursive-descent parser over the token stream. Keywords are matched
/// case-insensitively against identifier tokens. Recursion is bounded by
/// kMaxParseDepth: every production that re-enters the expression /
/// statement / FROM grammar holds a DepthGuard while it is open, so
/// pathological input (fuzzer-style runs of '(' or NOT) yields a
/// ParseError instead of overflowing the stack.
///
/// Interior AST nodes are bump-allocated from the root statement's
/// arena; only the root itself lives on the heap (it must own the arena
/// that backs its children). The token stream is borrowed, not copied —
/// the caller keeps it alive for the duration of the parse, and every
/// token text the AST retains is copied into node-owned std::strings.
class Parser {
 public:
  explicit Parser(const TokenStream& tokens) : tokens_(tokens) {}

  Result<StmtPtr> ParseStatement() {
    auto root = MakeNode<SelectStatement>();
    root->arena = std::make_unique<AstArena>();
    arena_ = root->arena.get();
    SQLOG_RETURN_IF_ERROR_R(ParseSelectBody(*root));
    // Allow trailing semicolons.
    while (Check(TokenType::kSemicolon)) Advance();
    if (!Check(TokenType::kEnd)) {
      return Error("unexpected trailing input");
    }
    return StmtPtr(std::move(root));
  }

 private:
  // --- token helpers -------------------------------------------------------

  const Token& Peek() const { return tokens_[pos_]; }
  const Token& PeekAhead(size_t k) const {
    size_t idx = pos_ + k;
    if (idx >= tokens_.size()) idx = tokens_.size() - 1;
    return tokens_[idx];
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Check(TokenType type) const { return Peek().type == type; }

  bool CheckKeyword(std::string_view kw) const {
    return Peek().type == TokenType::kIdentifier && EqualsIgnoreCase(Peek().text, kw);
  }

  bool MatchKeyword(std::string_view kw) {
    if (!CheckKeyword(kw)) return false;
    Advance();
    return true;
  }

  bool Match(TokenType type) {
    if (!Check(type)) return false;
    Advance();
    return true;
  }

  Status Expect(TokenType type, const char* what) {
    if (!Check(type)) {
      return Status::ParseError(StrFormat("expected %s at offset %zu, found '%.*s'",
                                          what, Peek().offset,
                                          static_cast<int>(Peek().text.size()),
                                          Peek().text.data()));
    }
    Advance();
    return Status::OK();
  }

  Status ExpectKeyword(std::string_view kw) {
    if (!CheckKeyword(kw)) {
      return Status::ParseError(StrFormat("expected keyword '%.*s' at offset %zu",
                                          static_cast<int>(kw.size()), kw.data(),
                                          Peek().offset));
    }
    Advance();
    return Status::OK();
  }

  Status Error(const char* message) const {
    return Status::ParseError(
        StrFormat("%s at offset %zu (near '%.*s')", message, Peek().offset,
                  static_cast<int>(Peek().text.size()), Peek().text.data()));
  }

  // --- node construction ----------------------------------------------------

  /// Bump-allocates an AST node in the current parse's arena.
  template <typename T, typename... Args>
  std::unique_ptr<T, NodeDeleter> New(Args&&... args) {
    return arena_->New<T>(std::forward<Args>(args)...);
  }

  std::unique_ptr<LiteralExpr, NodeDeleter> MakeNumberLiteral(std::string text) {
    auto lit = New<LiteralExpr>(LiteralKind::kNumber, std::move(text));
    lit->number_value = std::strtod(lit->text.c_str(), nullptr);
    return lit;
  }

  // --- recursion depth ------------------------------------------------------

  /// Counts simultaneously open nesting productions while in scope.
  class DepthGuard {
   public:
    explicit DepthGuard(int& depth) : depth_(depth) { ++depth_; }
    ~DepthGuard() { --depth_; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;

   private:
    int& depth_;
  };

  /// Fails once the next nesting production would exceed kMaxParseDepth.
  Status CheckDepth() const {
    if (depth_ < kMaxParseDepth) return Status::OK();
    return Status::ParseError(
        StrFormat("nesting deeper than %d levels at offset %zu", kMaxParseDepth,
                  Peek().offset));
  }

  /// Reserved words that terminate expressions / cannot start a primary.
  /// Dispatches on the case-folded first byte so classification touches
  /// at most four case-insensitive probes and never allocates.
  static bool IsReservedKeyword(std::string_view word) {
    if (word.empty()) return false;
    auto eq = [&word](std::string_view kw) { return EqualsIgnoreCase(word, kw); };
    switch (static_cast<unsigned char>(word[0]) | 0x20u) {
      case 'a': return eq("and") || eq("as") || eq("asc");
      case 'b': return eq("between");
      case 'c': return eq("cross") || eq("case");
      case 'd': return eq("distinct") || eq("desc");
      case 'e': return eq("exists") || eq("else") || eq("end");
      case 'f': return eq("from") || eq("full");
      case 'g': return eq("group");
      case 'h': return eq("having");
      case 'i': return eq("in") || eq("inner") || eq("is");
      case 'j': return eq("join");
      case 'l': return eq("left") || eq("like");
      case 'n': return eq("not");
      case 'o': return eq("on") || eq("or") || eq("order") || eq("outer");
      case 'r': return eq("right");
      case 's': return eq("select");
      case 't': return eq("top") || eq("then");
      case 'u': return eq("union");
      case 'w': return eq("where") || eq("when");
      default: return false;
    }
  }

  // --- statement ------------------------------------------------------------

  /// Parses a subquery SELECT into an arena-backed statement node.
  Result<StmtPtr> ParseSelectCore() {
    auto stmt = New<SelectStatement>();
    SQLOG_RETURN_IF_ERROR_R(ParseSelectBody(*stmt));
    return StmtPtr(std::move(stmt));
  }

  Status ParseSelectBody(SelectStatement& stmt) {
    SQLOG_RETURN_IF_ERROR(CheckDepth());
    DepthGuard depth(depth_);
    SQLOG_RETURN_IF_ERROR(ExpectKeyword("select"));

    if (MatchKeyword("distinct")) stmt.distinct = true;
    if (MatchKeyword("top")) {
      bool paren = Match(TokenType::kLParen);
      if (!Check(TokenType::kNumber)) return Error("expected count after TOP");
      std::string count_text(Advance().text);
      stmt.top_count = std::strtoll(count_text.c_str(), nullptr, 10);
      if (paren) SQLOG_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    }

    // Select list.
    while (true) {
      auto item = ParseSelectItem();
      if (!item.ok()) return item.status();
      stmt.select_items.push_back(std::move(item.value()));
      if (!Match(TokenType::kComma)) break;
    }

    // FROM clause (optional: `SELECT 1` is legal).
    if (MatchKeyword("from")) {
      while (true) {
        auto from = ParseFromElement();
        if (!from.ok()) return from.status();
        stmt.from_items.push_back(std::move(from.value()));
        if (!Match(TokenType::kComma)) break;
      }
    }

    if (MatchKeyword("where")) {
      auto cond = ParseExpr();
      if (!cond.ok()) return cond.status();
      stmt.where = std::move(cond.value());
    }

    if (CheckKeyword("group")) {
      Advance();
      SQLOG_RETURN_IF_ERROR(ExpectKeyword("by"));
      while (true) {
        auto expr = ParseExpr();
        if (!expr.ok()) return expr.status();
        stmt.group_by.push_back(std::move(expr.value()));
        if (!Match(TokenType::kComma)) break;
      }
      if (MatchKeyword("having")) {
        auto cond = ParseExpr();
        if (!cond.ok()) return cond.status();
        stmt.having = std::move(cond.value());
      }
    }

    if (CheckKeyword("order")) {
      Advance();
      SQLOG_RETURN_IF_ERROR(ExpectKeyword("by"));
      while (true) {
        auto expr = ParseExpr();
        if (!expr.ok()) return expr.status();
        bool desc = false;
        if (MatchKeyword("desc")) {
          desc = true;
        } else {
          MatchKeyword("asc");
        }
        stmt.order_by.emplace_back(std::move(expr.value()), desc);
        if (!Match(TokenType::kComma)) break;
      }
    }

    return Status::OK();
  }

  Result<SelectItem> ParseSelectItem() {
    // Bare `*`.
    if (Check(TokenType::kStar)) {
      Advance();
      return SelectItem(New<StarExpr>(), "");
    }
    // Qualified star `T.*`.
    if (Check(TokenType::kIdentifier) && PeekAhead(1).Is(TokenType::kDot) &&
        PeekAhead(2).Is(TokenType::kStar) && !IsReservedKeyword(Peek().text)) {
      std::string qualifier(Advance().text);
      Advance();  // '.'
      Advance();  // '*'
      return SelectItem(New<StarExpr>(std::move(qualifier)), "");
    }
    auto expr = ParseExpr();
    if (!expr.ok()) return expr.status();
    std::string alias;
    if (MatchKeyword("as")) {
      if (!Check(TokenType::kIdentifier)) return Error("expected alias after AS");
      alias.assign(Advance().text);
    } else if (Check(TokenType::kIdentifier) && !IsReservedKeyword(Peek().text)) {
      alias.assign(Advance().text);
    }
    return SelectItem(std::move(expr.value()), std::move(alias));
  }

  // --- FROM -----------------------------------------------------------------

  /// Parses one comma-separated FROM element, folding any JOIN chain into
  /// a left-deep JoinRef tree.
  Result<FromItemPtr> ParseFromElement() {
    auto left = ParseFromPrimary();
    if (!left.ok()) return left.status();
    FromItemPtr node = std::move(left.value());

    while (true) {
      JoinType type;
      if (MatchKeyword("join") || CheckJoinSequence("inner", type, JoinType::kInner)) {
        type = JoinType::kInner;
      } else if (CheckJoinSequence("left", type, JoinType::kLeftOuter)) {
      } else if (CheckJoinSequence("right", type, JoinType::kRightOuter)) {
      } else if (CheckJoinSequence("full", type, JoinType::kFullOuter)) {
      } else if (CheckJoinSequence("cross", type, JoinType::kCross)) {
      } else {
        break;
      }
      auto right = ParseFromPrimary();
      if (!right.ok()) return right.status();
      ExprPtr condition;
      if (type != JoinType::kCross) {
        SQLOG_RETURN_IF_ERROR_R(ExpectKeyword("on"));
        auto cond = ParseExpr();
        if (!cond.ok()) return cond.status();
        condition = std::move(cond.value());
      }
      node = New<JoinRef>(type, std::move(node), std::move(right.value()),
                          std::move(condition));
    }
    return node;
  }

  /// If the upcoming tokens are `<first> [OUTER] JOIN`, consumes them,
  /// sets `type` to `resolved`, and returns true.
  bool CheckJoinSequence(std::string_view first, JoinType& type, JoinType resolved) {
    if (!CheckKeyword(first)) return false;
    size_t k = 1;
    if (EqualsIgnoreCase(PeekAhead(k).text, "outer") &&
        PeekAhead(k).Is(TokenType::kIdentifier)) {
      ++k;
    }
    if (!(PeekAhead(k).Is(TokenType::kIdentifier) &&
          EqualsIgnoreCase(PeekAhead(k).text, "join"))) {
      return false;
    }
    for (size_t i = 0; i <= k; ++i) Advance();
    type = resolved;
    return true;
  }

  Result<FromItemPtr> ParseFromPrimary() {
    // Derived table.
    if (Check(TokenType::kLParen)) {
      // `( SELECT` — a derived table; `( name ...` would be invalid here.
      if (PeekAhead(1).Is(TokenType::kIdentifier) &&
          EqualsIgnoreCase(PeekAhead(1).text, "select")) {
        Advance();  // '('
        auto sub = ParseSelectCore();
        if (!sub.ok()) return sub.status();
        SQLOG_RETURN_IF_ERROR_R(Expect(TokenType::kRParen, "')'"));
        std::string alias;
        MatchKeyword("as");
        if (Check(TokenType::kIdentifier) && !IsReservedKeyword(Peek().text)) {
          alias.assign(Advance().text);
        }
        return FromItemPtr(New<SubqueryRef>(std::move(sub.value()), std::move(alias)));
      }
      // Parenthesized join tree: `(T1 JOIN T2 ON ...)`.
      Advance();
      SQLOG_RETURN_IF_ERROR_R(CheckDepth());
      DepthGuard depth(depth_);
      auto inner = ParseFromElement();
      if (!inner.ok()) return inner.status();
      SQLOG_RETURN_IF_ERROR_R(Expect(TokenType::kRParen, "')'"));
      return inner;
    }

    if (!Check(TokenType::kIdentifier)) return Error("expected table name");
    std::string first(Advance().text);
    std::string schema;
    std::string name = std::move(first);
    if (Match(TokenType::kDot)) {
      if (!Check(TokenType::kIdentifier)) return Error("expected name after '.'");
      schema = std::move(name);
      name.assign(Advance().text);
    }

    // Table-valued function.
    if (Check(TokenType::kLParen)) {
      Advance();
      auto fn = New<TableFunctionRef>(std::move(schema), std::move(name), "");
      if (!Check(TokenType::kRParen)) {
        while (true) {
          auto arg = ParseExpr();
          if (!arg.ok()) return arg.status();
          fn->args.push_back(std::move(arg.value()));
          if (!Match(TokenType::kComma)) break;
        }
      }
      SQLOG_RETURN_IF_ERROR_R(Expect(TokenType::kRParen, "')'"));
      MatchKeyword("as");
      if (Check(TokenType::kIdentifier) && !IsReservedKeyword(Peek().text)) {
        fn->alias.assign(Advance().text);
      }
      return FromItemPtr(std::move(fn));
    }

    std::string alias;
    MatchKeyword("as");
    if (Check(TokenType::kIdentifier) && !IsReservedKeyword(Peek().text)) {
      alias.assign(Advance().text);
    }
    return FromItemPtr(
        New<TableRef>(std::move(schema), std::move(name), std::move(alias)));
  }

  // --- expressions ----------------------------------------------------------

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    auto lhs = ParseAnd();
    if (!lhs.ok()) return lhs.status();
    ExprPtr node = std::move(lhs.value());
    while (MatchKeyword("or")) {
      auto rhs = ParseAnd();
      if (!rhs.ok()) return rhs.status();
      node = New<BinaryExpr>(BinaryOp::kOr, std::move(node), std::move(rhs.value()));
    }
    return node;
  }

  Result<ExprPtr> ParseAnd() {
    auto lhs = ParseNot();
    if (!lhs.ok()) return lhs.status();
    ExprPtr node = std::move(lhs.value());
    while (MatchKeyword("and")) {
      auto rhs = ParseNot();
      if (!rhs.ok()) return rhs.status();
      node = New<BinaryExpr>(BinaryOp::kAnd, std::move(node), std::move(rhs.value()));
    }
    return node;
  }

  Result<ExprPtr> ParseNot() {
    if (MatchKeyword("not")) {
      SQLOG_RETURN_IF_ERROR_R(CheckDepth());
      DepthGuard depth(depth_);
      auto operand = ParseNot();
      if (!operand.ok()) return operand.status();
      return ExprPtr(New<UnaryExpr>(UnaryOp::kNot, std::move(operand.value())));
    }
    return ParsePredicate();
  }

  Result<ExprPtr> ParsePredicate() {
    // EXISTS (SELECT ...)
    if (CheckKeyword("exists")) {
      Advance();
      SQLOG_RETURN_IF_ERROR_R(Expect(TokenType::kLParen, "'('"));
      auto sub = ParseSelectCore();
      if (!sub.ok()) return sub.status();
      SQLOG_RETURN_IF_ERROR_R(Expect(TokenType::kRParen, "')'"));
      return ExprPtr(New<ExistsExpr>(std::move(sub.value()), false));
    }

    auto lhs = ParseAdditive();
    if (!lhs.ok()) return lhs.status();
    ExprPtr node = std::move(lhs.value());

    // IS [NOT] NULL
    if (CheckKeyword("is")) {
      Advance();
      bool negated = MatchKeyword("not");
      SQLOG_RETURN_IF_ERROR_R(ExpectKeyword("null"));
      return ExprPtr(New<IsNullExpr>(std::move(node), negated));
    }

    bool negated = false;
    if (CheckKeyword("not") &&
        (EqualsIgnoreCase(PeekAhead(1).text, "in") ||
         EqualsIgnoreCase(PeekAhead(1).text, "like") ||
         EqualsIgnoreCase(PeekAhead(1).text, "between"))) {
      Advance();
      negated = true;
    }

    // [NOT] BETWEEN lo AND hi
    if (MatchKeyword("between")) {
      auto low = ParseAdditive();
      if (!low.ok()) return low.status();
      SQLOG_RETURN_IF_ERROR_R(ExpectKeyword("and"));
      auto high = ParseAdditive();
      if (!high.ok()) return high.status();
      return ExprPtr(New<BetweenExpr>(std::move(node), std::move(low.value()),
                                      std::move(high.value()), negated));
    }

    // [NOT] IN (list | subquery)
    if (MatchKeyword("in")) {
      SQLOG_RETURN_IF_ERROR_R(Expect(TokenType::kLParen, "'(' after IN"));
      if (CheckKeyword("select")) {
        auto sub = ParseSelectCore();
        if (!sub.ok()) return sub.status();
        SQLOG_RETURN_IF_ERROR_R(Expect(TokenType::kRParen, "')'"));
        return ExprPtr(
            New<InSubqueryExpr>(std::move(node), std::move(sub.value()), negated));
      }
      std::vector<ExprPtr> items;
      while (true) {
        auto item = ParseExpr();
        if (!item.ok()) return item.status();
        items.push_back(std::move(item.value()));
        if (!Match(TokenType::kComma)) break;
      }
      SQLOG_RETURN_IF_ERROR_R(Expect(TokenType::kRParen, "')'"));
      return ExprPtr(New<InListExpr>(std::move(node), std::move(items), negated));
    }

    // [NOT] LIKE pattern
    if (MatchKeyword("like")) {
      auto pattern = ParseAdditive();
      if (!pattern.ok()) return pattern.status();
      return ExprPtr(
          New<LikeExpr>(std::move(node), std::move(pattern.value()), negated));
    }

    if (negated) return Error("dangling NOT");

    // Comparison.
    BinaryOp op;
    bool has_op = true;
    switch (Peek().type) {
      case TokenType::kEq: op = BinaryOp::kEq; break;
      case TokenType::kNotEq: op = BinaryOp::kNotEq; break;
      case TokenType::kLess: op = BinaryOp::kLess; break;
      case TokenType::kLessEq: op = BinaryOp::kLessEq; break;
      case TokenType::kGreater: op = BinaryOp::kGreater; break;
      case TokenType::kGreaterEq: op = BinaryOp::kGreaterEq; break;
      default: has_op = false; op = BinaryOp::kEq; break;
    }
    if (has_op) {
      Advance();
      auto rhs = ParseAdditive();
      if (!rhs.ok()) return rhs.status();
      return ExprPtr(New<BinaryExpr>(op, std::move(node), std::move(rhs.value())));
    }
    return node;
  }

  Result<ExprPtr> ParseAdditive() {
    auto lhs = ParseMultiplicative();
    if (!lhs.ok()) return lhs.status();
    ExprPtr node = std::move(lhs.value());
    while (Check(TokenType::kPlus) || Check(TokenType::kMinus)) {
      BinaryOp op = Check(TokenType::kPlus) ? BinaryOp::kAdd : BinaryOp::kSub;
      Advance();
      auto rhs = ParseMultiplicative();
      if (!rhs.ok()) return rhs.status();
      node = New<BinaryExpr>(op, std::move(node), std::move(rhs.value()));
    }
    return node;
  }

  Result<ExprPtr> ParseMultiplicative() {
    auto lhs = ParseUnary();
    if (!lhs.ok()) return lhs.status();
    ExprPtr node = std::move(lhs.value());
    while (Check(TokenType::kStar) || Check(TokenType::kSlash) ||
           Check(TokenType::kPercent)) {
      BinaryOp op = Check(TokenType::kStar)
                        ? BinaryOp::kMul
                        : (Check(TokenType::kSlash) ? BinaryOp::kDiv : BinaryOp::kMod);
      Advance();
      auto rhs = ParseUnary();
      if (!rhs.ok()) return rhs.status();
      node = New<BinaryExpr>(op, std::move(node), std::move(rhs.value()));
    }
    return node;
  }

  Result<ExprPtr> ParseUnary() {
    if (Check(TokenType::kMinus)) {
      Advance();
      // Fold unary minus into numeric literals so `-5` skeletonizes the
      // same way as other constants.
      if (Check(TokenType::kNumber)) {
        auto lit = MakeNumberLiteral("-" + std::string(Advance().text));
        return ExprPtr(std::move(lit));
      }
      SQLOG_RETURN_IF_ERROR_R(CheckDepth());
      DepthGuard depth(depth_);
      auto operand = ParseUnary();
      if (!operand.ok()) return operand.status();
      // Fold through parens too: `-(1e-308)` must build the same literal
      // as `-1e-308`, or the two skeletonize differently (fuzz-found).
      if (operand.value()->kind() == ExprKind::kLiteral) {
        auto& lit = static_cast<LiteralExpr&>(*operand.value());
        if (lit.literal_kind == LiteralKind::kNumber) {
          std::string text = lit.text[0] == '-' ? lit.text.substr(1) : "-" + lit.text;
          return ExprPtr(MakeNumberLiteral(std::move(text)));
        }
      }
      return ExprPtr(New<UnaryExpr>(UnaryOp::kMinus, std::move(operand.value())));
    }
    if (Check(TokenType::kPlus)) {
      Advance();
      SQLOG_RETURN_IF_ERROR_R(CheckDepth());
      DepthGuard depth(depth_);
      auto operand = ParseUnary();
      if (!operand.ok()) return operand.status();
      return ExprPtr(New<UnaryExpr>(UnaryOp::kPlus, std::move(operand.value())));
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& tok = Peek();
    switch (tok.type) {
      case TokenType::kNumber: {
        std::string text(Advance().text);
        return ExprPtr(MakeNumberLiteral(std::move(text)));
      }
      case TokenType::kString: {
        std::string text(Advance().text);
        return ExprPtr(New<LiteralExpr>(LiteralKind::kString, std::move(text)));
      }
      case TokenType::kVariable: {
        std::string name(Advance().text);
        return ExprPtr(New<VariableExpr>(std::move(name)));
      }
      case TokenType::kStar:
        // count(*) routes through FunctionCall args and bare `*` through
        // ParseSelectItem; a star in any other expression position (e.g.
        // `(*)`, fuzz-found) would build an AST whose canonical print
        // cannot reparse, so reject it here.
        return Error("'*' is not valid in an expression");
      case TokenType::kLParen: {
        Advance();
        SQLOG_RETURN_IF_ERROR_R(CheckDepth());
        DepthGuard depth(depth_);
        if (CheckKeyword("select")) {
          auto sub = ParseSelectCore();
          if (!sub.ok()) return sub.status();
          SQLOG_RETURN_IF_ERROR_R(Expect(TokenType::kRParen, "')'"));
          return ExprPtr(New<SubqueryExpr>(std::move(sub.value())));
        }
        auto inner = ParseExpr();
        if (!inner.ok()) return inner.status();
        SQLOG_RETURN_IF_ERROR_R(Expect(TokenType::kRParen, "')'"));
        return inner;
      }
      case TokenType::kIdentifier:
        break;  // handled below
      default:
        return Error("expected expression");
    }

    if (CheckKeyword("null")) {
      Advance();
      return ExprPtr(New<LiteralExpr>(LiteralKind::kNull, "NULL"));
    }
    if (CheckKeyword("case")) return ParseCase();
    if (IsReservedKeyword(tok.text)) return Error("unexpected keyword in expression");

    std::string first(Advance().text);

    // Function call (optionally schema-qualified).
    if (Check(TokenType::kLParen) ||
        (Check(TokenType::kDot) && PeekAhead(1).Is(TokenType::kIdentifier) &&
         PeekAhead(2).Is(TokenType::kLParen))) {
      std::string name = std::move(first);
      if (Match(TokenType::kDot)) {
        name += ".";
        name.append(Advance().text);
      }
      Advance();  // '('
      auto fn = New<FunctionCallExpr>(std::move(name));
      if (MatchKeyword("distinct")) fn->distinct = true;
      if (!Check(TokenType::kRParen)) {
        while (true) {
          if (Check(TokenType::kStar)) {
            Advance();
            fn->args.push_back(New<StarExpr>());
          } else {
            auto arg = ParseExpr();
            if (!arg.ok()) return arg.status();
            fn->args.push_back(std::move(arg.value()));
          }
          if (!Match(TokenType::kComma)) break;
        }
      }
      SQLOG_RETURN_IF_ERROR_R(Expect(TokenType::kRParen, "')'"));
      return ExprPtr(std::move(fn));
    }

    // Column reference, optionally qualified.
    if (Check(TokenType::kDot) && PeekAhead(1).Is(TokenType::kIdentifier)) {
      Advance();  // '.'
      std::string name(Advance().text);
      return ExprPtr(New<ColumnRefExpr>(std::move(first), std::move(name)));
    }
    return ExprPtr(New<ColumnRefExpr>("", std::move(first)));
  }

  Result<ExprPtr> ParseCase() {
    SQLOG_RETURN_IF_ERROR_R(CheckDepth());
    DepthGuard depth(depth_);
    SQLOG_RETURN_IF_ERROR_R(ExpectKeyword("case"));
    auto node = New<CaseExpr>();
    // Simple form: CASE x WHEN v THEN ... → normalized to searched form.
    ExprPtr subject;
    if (!CheckKeyword("when")) {
      auto subj = ParseExpr();
      if (!subj.ok()) return subj.status();
      subject = std::move(subj.value());
    }
    while (MatchKeyword("when")) {
      auto cond = ParseExpr();
      if (!cond.ok()) return cond.status();
      SQLOG_RETURN_IF_ERROR_R(ExpectKeyword("then"));
      auto value = ParseExpr();
      if (!value.ok()) return value.status();
      ExprPtr condition = std::move(cond.value());
      if (subject) {
        condition = New<BinaryExpr>(BinaryOp::kEq, subject->Clone(),
                                    std::move(condition));
      }
      node->branches.push_back(CaseExpr::Branch{std::move(condition), std::move(value.value())});
    }
    if (node->branches.empty()) return Error("CASE without WHEN branch");
    if (MatchKeyword("else")) {
      auto value = ParseExpr();
      if (!value.ok()) return value.status();
      node->else_value = std::move(value.value());
    }
    SQLOG_RETURN_IF_ERROR_R(ExpectKeyword("end"));
    return ExprPtr(std::move(node));
  }

  const TokenStream& tokens_;
  size_t pos_ = 0;
  int depth_ = 0;
  AstArena* arena_ = nullptr;
};

}  // namespace

Result<StmtPtr> ParseTokens(const TokenStream& tokens) {
  if (tokens.empty()) {
    return Status::ParseError("empty token stream");
  }
  Parser parser(tokens);
  return parser.ParseStatement();
}

Result<StmtPtr> ParseSelect(std::string_view statement) {
  auto tokens = Lex(statement);
  if (!tokens.ok()) return tokens.status();
  return ParseTokens(tokens.value());
}

}  // namespace sqlog::sql
