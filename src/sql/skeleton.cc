#include "sql/skeleton.h"

#include <algorithm>

#include "sql/parser.h"
#include "sql/printer.h"
#include "util/hash.h"
#include "util/string_util.h"

namespace sqlog::sql {

namespace {

PredicateOp FromBinaryOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq: return PredicateOp::kEq;
    case BinaryOp::kNotEq: return PredicateOp::kNotEq;
    case BinaryOp::kLess: return PredicateOp::kLess;
    case BinaryOp::kLessEq: return PredicateOp::kLessEq;
    case BinaryOp::kGreater: return PredicateOp::kGreater;
    case BinaryOp::kGreaterEq: return PredicateOp::kGreaterEq;
    default: return PredicateOp::kOther;
  }
}

/// Flips asymmetric comparison operators for `literal op column` form.
PredicateOp Mirror(PredicateOp op) {
  switch (op) {
    case PredicateOp::kLess: return PredicateOp::kGreater;
    case PredicateOp::kLessEq: return PredicateOp::kGreaterEq;
    case PredicateOp::kGreater: return PredicateOp::kLess;
    case PredicateOp::kGreaterEq: return PredicateOp::kLessEq;
    default: return op;
  }
}

bool IsConstantOperand(const Expr& expr) {
  return expr.kind() == ExprKind::kLiteral || expr.kind() == ExprKind::kVariable;
}

bool IsNullLiteral(const Expr& expr) {
  return expr.kind() == ExprKind::kLiteral &&
         static_cast<const LiteralExpr&>(expr).literal_kind == LiteralKind::kNull;
}

std::string ConstantText(const Expr& expr) {
  PrintOptions opts;
  opts.canonical = true;
  return Print(expr, opts);
}

/// Extracts (qualifier, column) from a column-ref expression; returns
/// false for anything else.
bool AsColumn(const Expr& expr, std::string& qualifier, std::string& column) {
  if (expr.kind() != ExprKind::kColumnRef) return false;
  const auto& col = static_cast<const ColumnRefExpr&>(expr);
  qualifier = ToLower(col.qualifier);
  column = ToLower(col.name);
  return true;
}

/// Matches computed-column shapes: a function call whose arguments are
/// exactly one column plus constants (`upper(name)`, `round(ra, 2)`),
/// or an arithmetic node over one column and one constant
/// (`objid + 1`, `2 * z`). Extracts the wrapped column and the function
/// name / operator spelling.
bool AsComputedColumn(const Expr& expr, std::string& qualifier, std::string& column,
                      std::string& fn) {
  if (expr.kind() == ExprKind::kFunctionCall) {
    const auto& call = static_cast<const FunctionCallExpr&>(expr);
    const Expr* column_arg = nullptr;
    for (const auto& arg : call.args) {
      if (arg->kind() == ExprKind::kColumnRef) {
        if (column_arg != nullptr) return false;  // two columns: not single-column
        column_arg = arg.get();
      } else if (!IsConstantOperand(*arg)) {
        return false;
      }
    }
    if (column_arg == nullptr || !AsColumn(*column_arg, qualifier, column)) return false;
    fn = ToLower(call.name);
    return true;
  }
  if (expr.kind() == ExprKind::kBinary) {
    const auto& bin = static_cast<const BinaryExpr&>(expr);
    char spelled;
    switch (bin.op) {
      case BinaryOp::kAdd: spelled = '+'; break;
      case BinaryOp::kSub: spelled = '-'; break;
      case BinaryOp::kMul: spelled = '*'; break;
      case BinaryOp::kDiv: spelled = '/'; break;
      case BinaryOp::kMod: spelled = '%'; break;
      default: return false;
    }
    if ((AsColumn(*bin.lhs, qualifier, column) && IsConstantOperand(*bin.rhs)) ||
        (AsColumn(*bin.rhs, qualifier, column) && IsConstantOperand(*bin.lhs))) {
      fn.assign(1, spelled);
      return true;
    }
    return false;
  }
  return false;
}

/// Recursively collects leaf predicates from a WHERE tree. Any OR or NOT
/// above leaf level flips `conjunctive` off; leaves below it are still
/// collected so CP counts remain meaningful. `value_exprs`, when set,
/// records the AST node behind every pushed predicate value, in order.
void CollectPredicates(const Expr& expr, std::vector<Predicate>& out, bool& conjunctive,
                       std::vector<const Expr*>* value_exprs) {
  auto push_value = [&](Predicate& pred, const Expr& value) {
    pred.values.push_back(ConstantText(value));
    if (value_exprs != nullptr) value_exprs->push_back(&value);
  };
  switch (expr.kind()) {
    case ExprKind::kBinary: {
      const auto& bin = static_cast<const BinaryExpr&>(expr);
      if (bin.op == BinaryOp::kAnd) {
        CollectPredicates(*bin.lhs, out, conjunctive, value_exprs);
        CollectPredicates(*bin.rhs, out, conjunctive, value_exprs);
        return;
      }
      if (bin.op == BinaryOp::kOr) {
        conjunctive = false;
        CollectPredicates(*bin.lhs, out, conjunctive, value_exprs);
        CollectPredicates(*bin.rhs, out, conjunctive, value_exprs);
        return;
      }
      Predicate pred;
      pred.op = FromBinaryOp(bin.op);
      std::string qualifier;
      std::string column;
      if (AsColumn(*bin.lhs, qualifier, column) && IsConstantOperand(*bin.rhs)) {
        pred.qualifier = qualifier;
        pred.column = column;
        push_value(pred, *bin.rhs);
        pred.constant_comparison = true;
        pred.compares_to_null_literal =
            (pred.op == PredicateOp::kEq || pred.op == PredicateOp::kNotEq) &&
            IsNullLiteral(*bin.rhs);
      } else if (AsColumn(*bin.rhs, qualifier, column) && IsConstantOperand(*bin.lhs)) {
        pred.op = Mirror(pred.op);
        pred.qualifier = qualifier;
        pred.column = column;
        push_value(pred, *bin.lhs);
        pred.constant_comparison = true;
        pred.compares_to_null_literal =
            (pred.op == PredicateOp::kEq || pred.op == PredicateOp::kNotEq) &&
            IsNullLiteral(*bin.lhs);
      } else {
        pred.op = PredicateOp::kOther;
        // Record the left column when present (e.g., join predicates),
        // so downstream heuristics can still see what is filtered.
        std::string rhs_qualifier;
        std::string rhs_column;
        std::string fn;
        if (AsColumn(*bin.lhs, qualifier, column)) {
          pred.qualifier = qualifier;
          pred.column = column;
          pred.column_equijoin =
              bin.op == BinaryOp::kEq && AsColumn(*bin.rhs, rhs_qualifier, rhs_column);
        } else if (AsComputedColumn(*bin.lhs, qualifier, column, fn) &&
                   IsConstantOperand(*bin.rhs)) {
          pred.qualifier = qualifier;
          pred.column = column;
          pred.lhs_computed = true;
          pred.computed_op = FromBinaryOp(bin.op);
          pred.computed_fn = std::move(fn);
        } else if (AsComputedColumn(*bin.rhs, qualifier, column, fn) &&
                   IsConstantOperand(*bin.lhs)) {
          pred.qualifier = qualifier;
          pred.column = column;
          pred.lhs_computed = true;
          pred.computed_op = Mirror(FromBinaryOp(bin.op));
          pred.computed_fn = std::move(fn);
        }
      }
      out.push_back(std::move(pred));
      return;
    }
    case ExprKind::kUnary: {
      const auto& unary = static_cast<const UnaryExpr&>(expr);
      if (unary.op == UnaryOp::kNot) {
        conjunctive = false;
        CollectPredicates(*unary.operand, out, conjunctive, value_exprs);
        return;
      }
      Predicate pred;
      pred.op = PredicateOp::kOther;
      out.push_back(std::move(pred));
      return;
    }
    case ExprKind::kBetween: {
      const auto& between = static_cast<const BetweenExpr&>(expr);
      Predicate pred;
      pred.op = PredicateOp::kBetween;
      std::string qualifier;
      std::string column;
      if (AsColumn(*between.operand, qualifier, column)) {
        pred.qualifier = qualifier;
        pred.column = column;
        if (IsConstantOperand(*between.low) && IsConstantOperand(*between.high)) {
          push_value(pred, *between.low);
          push_value(pred, *between.high);
          pred.constant_comparison = true;
        }
      }
      out.push_back(std::move(pred));
      return;
    }
    case ExprKind::kInList: {
      const auto& in = static_cast<const InListExpr&>(expr);
      Predicate pred;
      pred.op = PredicateOp::kIn;
      std::string qualifier;
      std::string column;
      if (AsColumn(*in.operand, qualifier, column)) {
        pred.qualifier = qualifier;
        pred.column = column;
        bool all_constant = true;
        for (const auto& item : in.items) {
          if (!IsConstantOperand(*item)) {
            all_constant = false;
            break;
          }
        }
        if (all_constant) {
          for (const auto& item : in.items) push_value(pred, *item);
          pred.constant_comparison = true;
        }
      }
      out.push_back(std::move(pred));
      return;
    }
    case ExprKind::kIsNull: {
      const auto& is_null = static_cast<const IsNullExpr&>(expr);
      Predicate pred;
      pred.op = is_null.negated ? PredicateOp::kIsNotNull : PredicateOp::kIsNull;
      std::string qualifier;
      std::string column;
      if (AsColumn(*is_null.operand, qualifier, column)) {
        pred.qualifier = qualifier;
        pred.column = column;
      }
      out.push_back(std::move(pred));
      return;
    }
    case ExprKind::kLike: {
      const auto& like = static_cast<const LikeExpr&>(expr);
      Predicate pred;
      pred.op = PredicateOp::kLike;
      std::string qualifier;
      std::string column;
      if (AsColumn(*like.operand, qualifier, column)) {
        pred.qualifier = qualifier;
        pred.column = column;
        if (IsConstantOperand(*like.pattern)) {
          push_value(pred, *like.pattern);
          pred.constant_comparison = true;
        }
      }
      out.push_back(std::move(pred));
      return;
    }
    default: {
      Predicate pred;
      pred.op = PredicateOp::kOther;
      out.push_back(std::move(pred));
      return;
    }
  }
}

/// Flattens FROM items into base tables and table functions.
void CollectFromNames(const FromItem& item, std::vector<std::string>& tables,
                      std::vector<std::string>& functions) {
  switch (item.kind()) {
    case FromKind::kTable: {
      const auto& table = static_cast<const TableRef&>(item);
      tables.push_back(ToLower(table.table));
      return;
    }
    case FromKind::kTableFunction: {
      const auto& fn = static_cast<const TableFunctionRef&>(item);
      functions.push_back(ToLower(fn.name));
      return;
    }
    case FromKind::kSubquery: {
      const auto& sub = static_cast<const SubqueryRef&>(item);
      for (const auto& inner : sub.subquery->from_items) {
        CollectFromNames(*inner, tables, functions);
      }
      return;
    }
    case FromKind::kJoin: {
      const auto& join = static_cast<const JoinRef&>(item);
      CollectFromNames(*join.left, tables, functions);
      CollectFromNames(*join.right, tables, functions);
      return;
    }
  }
}

/// Output column names: alias when given, the column name for plain
/// refs, the function name for calls (SQL Server style).
void CollectSelectedColumns(const SelectStatement& stmt, std::vector<std::string>& columns,
                            bool& star) {
  for (const auto& item : stmt.select_items) {
    if (!item.alias.empty()) {
      columns.push_back(ToLower(item.alias));
      continue;
    }
    switch (item.expr->kind()) {
      case ExprKind::kStar:
        star = true;
        break;
      case ExprKind::kColumnRef:
        columns.push_back(ToLower(static_cast<const ColumnRefExpr&>(*item.expr).name));
        break;
      case ExprKind::kFunctionCall:
        columns.push_back(ToLower(static_cast<const FunctionCallExpr&>(*item.expr).name));
        break;
      default:
        break;
    }
  }
}

}  // namespace

const char* PredicateOpName(PredicateOp op) {
  switch (op) {
    case PredicateOp::kEq: return "=";
    case PredicateOp::kNotEq: return "<>";
    case PredicateOp::kLess: return "<";
    case PredicateOp::kLessEq: return "<=";
    case PredicateOp::kGreater: return ">";
    case PredicateOp::kGreaterEq: return ">=";
    case PredicateOp::kBetween: return "between";
    case PredicateOp::kIn: return "in";
    case PredicateOp::kLike: return "like";
    case PredicateOp::kIsNull: return "is null";
    case PredicateOp::kIsNotNull: return "is not null";
    case PredicateOp::kOther: return "other";
  }
  return "other";
}

QueryTemplate MakeTemplate(const SelectStatement& stmt) {
  PrintOptions opts;
  opts.canonical = true;
  opts.placeholders = true;
  QueryTemplate tmpl;
  tmpl.ssc = PrintSelectClause(stmt, opts);
  tmpl.sfc = PrintFromClause(stmt, opts);
  tmpl.swc = PrintWhereClause(stmt, opts);
  tmpl.tail = PrintTailClauses(stmt, opts);
  uint64_t h = Fnv1a64(tmpl.ssc);
  h = HashCombine(h, Fnv1a64(tmpl.sfc));
  h = HashCombine(h, Fnv1a64(tmpl.swc));
  h = HashCombine(h, Fnv1a64(tmpl.tail));
  tmpl.fingerprint = h;
  return tmpl;
}

QueryFacts Analyze(std::shared_ptr<const SelectStatement> stmt,
                   std::vector<const Expr*>* predicate_value_exprs) {
  QueryFacts facts;
  facts.ast = stmt;
  facts.tmpl = MakeTemplate(*stmt);

  PrintOptions concrete;
  concrete.canonical = true;
  concrete.placeholders = false;
  facts.sc = PrintSelectClause(*stmt, concrete);
  facts.fc = PrintFromClause(*stmt, concrete);
  facts.wc = PrintWhereClause(*stmt, concrete);

  if (stmt->where) {
    CollectPredicates(*stmt->where, facts.predicates, facts.where_conjunctive,
                      predicate_value_exprs);
  }
  CollectSelectedColumns(*stmt, facts.selected_columns, facts.selects_star);
  facts.from_item_count = static_cast<int>(stmt->from_items.size());
  for (const auto& item : stmt->from_items) {
    CollectFromNames(*item, facts.tables, facts.table_functions);
  }
  return facts;
}

Result<QueryFacts> ParseAndAnalyze(const std::string& statement_text) {
  auto parsed = ParseSelect(statement_text);
  if (!parsed.ok()) return parsed.status();
  std::shared_ptr<const SelectStatement> ast(std::move(parsed.value()));
  return Analyze(std::move(ast));
}

Result<QueryFacts> ParseAndAnalyzeTokens(const TokenStream& tokens,
                                         std::vector<const Expr*>* predicate_value_exprs) {
  auto parsed = ParseTokens(tokens);
  if (!parsed.ok()) return parsed.status();
  std::shared_ptr<const SelectStatement> ast(std::move(parsed.value()));
  return Analyze(std::move(ast), predicate_value_exprs);
}

}  // namespace sqlog::sql
