#include "sql/ast.h"

#include "util/byte_class.h"

#include "util/string_util.h"

namespace sqlog::sql {

InSubqueryExpr::InSubqueryExpr(ExprPtr operand_in, StmtPtr subquery_in, bool negated_in)
    : Expr(ExprKind::kInSubquery),
      operand(std::move(operand_in)),
      subquery(std::move(subquery_in)),
      negated(negated_in) {}

InSubqueryExpr::~InSubqueryExpr() = default;

ExprPtr InSubqueryExpr::Clone() const {
  return MakeNode<InSubqueryExpr>(operand->Clone(), subquery->Clone(), negated);
}

ExistsExpr::ExistsExpr(StmtPtr subquery_in, bool negated_in)
    : Expr(ExprKind::kExists), subquery(std::move(subquery_in)), negated(negated_in) {}

ExistsExpr::~ExistsExpr() = default;

ExprPtr ExistsExpr::Clone() const {
  return MakeNode<ExistsExpr>(subquery->Clone(), negated);
}

SubqueryExpr::SubqueryExpr(StmtPtr subquery_in)
    : Expr(ExprKind::kSubquery), subquery(std::move(subquery_in)) {}

SubqueryExpr::~SubqueryExpr() = default;

ExprPtr SubqueryExpr::Clone() const {
  return MakeNode<SubqueryExpr>(subquery->Clone());
}

SubqueryRef::SubqueryRef(StmtPtr subquery_in, std::string alias_in)
    : FromItem(FromKind::kSubquery),
      subquery(std::move(subquery_in)),
      alias(std::move(alias_in)) {}

SubqueryRef::~SubqueryRef() = default;

FromItemPtr SubqueryRef::Clone() const {
  return MakeNode<SubqueryRef>(subquery->Clone(), alias);
}

StatementKind ClassifyStatement(const std::string& statement_text) {
  std::string_view trimmed = Trim(statement_text);
  // Skip leading comments so `-- note\nSELECT` classifies as SELECT.
  while (true) {
    if (trimmed.size() >= 2 && trimmed[0] == '-' && trimmed[1] == '-') {
      size_t nl = trimmed.find('\n');
      if (nl == std::string_view::npos) return StatementKind::kOther;
      trimmed = Trim(trimmed.substr(nl + 1));
      continue;
    }
    if (trimmed.size() >= 2 && trimmed[0] == '/' && trimmed[1] == '*') {
      size_t close = trimmed.find("*/");
      if (close == std::string_view::npos) return StatementKind::kOther;
      trimmed = Trim(trimmed.substr(close + 2));
      continue;
    }
    break;
  }
  if (trimmed.empty()) return StatementKind::kOther;
  // Parenthesized selects: `(SELECT ...)`.
  while (!trimmed.empty() && trimmed.front() == '(') trimmed = Trim(trimmed.substr(1));
  size_t end = 0;
  while (end < trimmed.size() &&
         IsAlphaByte(trimmed[end])) {
    ++end;
  }
  std::string_view word = trimmed.substr(0, end);
  if (EqualsIgnoreCase(word, "select")) return StatementKind::kSelect;
  if (EqualsIgnoreCase(word, "insert")) return StatementKind::kInsert;
  if (EqualsIgnoreCase(word, "update")) return StatementKind::kUpdate;
  if (EqualsIgnoreCase(word, "delete")) return StatementKind::kDelete;
  if (EqualsIgnoreCase(word, "create")) return StatementKind::kCreate;
  if (EqualsIgnoreCase(word, "drop")) return StatementKind::kDrop;
  if (EqualsIgnoreCase(word, "alter")) return StatementKind::kAlter;
  return StatementKind::kOther;
}

const char* StatementKindName(StatementKind kind) {
  switch (kind) {
    case StatementKind::kSelect: return "SELECT";
    case StatementKind::kInsert: return "INSERT";
    case StatementKind::kUpdate: return "UPDATE";
    case StatementKind::kDelete: return "DELETE";
    case StatementKind::kCreate: return "CREATE";
    case StatementKind::kDrop: return "DROP";
    case StatementKind::kAlter: return "ALTER";
    case StatementKind::kOther: return "OTHER";
  }
  return "OTHER";
}

}  // namespace sqlog::sql
