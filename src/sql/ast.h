#ifndef SQLOG_SQL_AST_H_
#define SQLOG_SQL_AST_H_

#include <cstddef>
#include <memory>
#include <new>
#include <string>
#include <utility>
#include <vector>

namespace sqlog::sql {

class SelectStatement;

// ---------------------------------------------------------------------------
// Node storage: per-parse arena
// ---------------------------------------------------------------------------

/// Common base of every AST node (Expr, FromItem, SelectStatement). The
/// flag records where the node's storage came from so NodeDeleter can
/// destroy it correctly: arena nodes run their destructor in place (the
/// arena reclaims the memory in bulk), heap nodes are deleted normally.
struct AstNode {
  bool arena_node = false;

 protected:
  AstNode() = default;
  ~AstNode() = default;
};

/// Deleter shared by every owning AST pointer. Destruction semantics
/// depend on the node, not the pointer, so heap- and arena-allocated
/// nodes mix freely inside one tree.
struct NodeDeleter {
  template <typename T>
  void operator()(T* node) const {
    if (node->arena_node) {
      node->~T();
    } else {
      delete node;
    }
  }
};

using ExprPtr = std::unique_ptr<class Expr, NodeDeleter>;
using FromItemPtr = std::unique_ptr<class FromItem, NodeDeleter>;
using StmtPtr = std::unique_ptr<SelectStatement, NodeDeleter>;

/// Heap-allocates an AST node behind the shared deleter — the drop-in
/// replacement for std::make_unique at every call site that builds nodes
/// outside a parse (clones, solver rewrites, tests).
template <typename T, typename... Args>
std::unique_ptr<T, NodeDeleter> MakeNode(Args&&... args) {
  return std::unique_ptr<T, NodeDeleter>(new T(std::forward<Args>(args)...));
}

/// Chunked bump allocator for AST nodes, owned by the root statement of
/// a parse. Nodes are destroyed individually through NodeDeleter (their
/// destructors still run, releasing std::string payloads); the chunks
/// are freed in one sweep when the arena dies. This removes the
/// per-node malloc/free pair that dominated parse cost.
class AstArena {
 public:
  explicit AstArena(size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes) {}

  AstArena(const AstArena&) = delete;
  AstArena& operator=(const AstArena&) = delete;

  /// Constructs a T inside the arena and marks it as arena-backed.
  template <typename T, typename... Args>
  std::unique_ptr<T, NodeDeleter> New(Args&&... args) {
    void* slot = Allocate(sizeof(T), alignof(T));
    T* node = ::new (slot) T(std::forward<Args>(args)...);
    node->arena_node = true;
    return std::unique_ptr<T, NodeDeleter>(node);
  }

  size_t bytes_allocated() const { return bytes_allocated_; }

  static constexpr size_t kDefaultChunkBytes = 16 * 1024;

 private:
  void* Allocate(size_t bytes, size_t align) {
    size_t aligned = (used_ + align - 1) & ~(align - 1);
    if (chunks_.empty() || aligned + bytes > chunk_bytes_) {
      // operator new[] storage satisfies every fundamental alignment, so
      // nodes of any (non-overaligned) type can be placed in a chunk.
      size_t size = bytes > chunk_bytes_ ? bytes : chunk_bytes_;
      chunks_.push_back(std::unique_ptr<char[]>(new char[size]));
      aligned = 0;
    }
    used_ = aligned + bytes;
    bytes_allocated_ += bytes;
    return chunks_.back().get() + aligned;
  }

  size_t chunk_bytes_;
  size_t used_ = 0;  // bytes used in chunks_.back()
  size_t bytes_allocated_ = 0;
  std::vector<std::unique_ptr<char[]>> chunks_;
};

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

/// Discriminator for Expr subclasses; the library avoids RTTI, so
/// downcasts go through kind() checks.
enum class ExprKind {
  kLiteral,
  kColumnRef,
  kStar,
  kVariable,
  kFunctionCall,
  kUnary,
  kBinary,
  kBetween,
  kInList,
  kInSubquery,
  kExists,
  kIsNull,
  kLike,
  kSubquery,
  kCase,
};

/// Binary operators, both scalar and boolean.
enum class BinaryOp {
  kAnd,
  kOr,
  kEq,
  kNotEq,
  kLess,
  kLessEq,
  kGreater,
  kGreaterEq,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
};

/// Unary operators.
enum class UnaryOp {
  kNot,
  kMinus,
  kPlus,
};

/// Literal payload categories.
enum class LiteralKind {
  kNumber,
  kString,
  kNull,
};

/// Base class of all expression nodes. Every node is deep-copyable via
/// Clone(), which the antipattern solvers rely on when rewriting
/// queries; clones are always heap-backed so they may outlive the parse
/// arena they were copied from.
class Expr : public AstNode {
 public:
  explicit Expr(ExprKind kind) : kind_(kind) {}
  virtual ~Expr() = default;

  Expr(const Expr&) = delete;
  Expr& operator=(const Expr&) = delete;

  ExprKind kind() const { return kind_; }
  virtual ExprPtr Clone() const = 0;

 private:
  ExprKind kind_;
};

/// A numeric, string, or NULL literal. `text` preserves the literal
/// exactly as written (for round-trip printing); `number_value` is the
/// parsed value for numeric literals.
class LiteralExpr final : public Expr {
 public:
  LiteralExpr(LiteralKind literal_kind, std::string text)
      : Expr(ExprKind::kLiteral), literal_kind(literal_kind), text(std::move(text)) {}

  ExprPtr Clone() const override {
    auto copy = MakeNode<LiteralExpr>(literal_kind, text);
    copy->number_value = number_value;
    return copy;
  }

  LiteralKind literal_kind;
  std::string text;
  double number_value = 0.0;
};

/// Reference to a column, optionally qualified: `E.name` or `name`.
class ColumnRefExpr final : public Expr {
 public:
  ColumnRefExpr(std::string qualifier, std::string name)
      : Expr(ExprKind::kColumnRef), qualifier(std::move(qualifier)), name(std::move(name)) {}

  ExprPtr Clone() const override {
    return MakeNode<ColumnRefExpr>(qualifier, name);
  }

  std::string qualifier;  // empty when unqualified
  std::string name;
};

/// `*` or `T.*` in a select list or inside count(*).
class StarExpr final : public Expr {
 public:
  explicit StarExpr(std::string qualifier = "")
      : Expr(ExprKind::kStar), qualifier(std::move(qualifier)) {}

  ExprPtr Clone() const override {
    return MakeNode<StarExpr>(qualifier);
  }

  std::string qualifier;  // empty for a bare `*`
};

/// T-SQL variable such as `@ra`.
class VariableExpr final : public Expr {
 public:
  explicit VariableExpr(std::string name)
      : Expr(ExprKind::kVariable), name(std::move(name)) {}

  ExprPtr Clone() const override {
    return MakeNode<VariableExpr>(name);
  }

  std::string name;  // without the leading '@'
};

/// Function call: `count(orders)`, `fgetnearbyobjeq(@ra, @dec, 0.1)`,
/// `count(distinct x)`.
class FunctionCallExpr final : public Expr {
 public:
  explicit FunctionCallExpr(std::string name)
      : Expr(ExprKind::kFunctionCall), name(std::move(name)) {}

  ExprPtr Clone() const override {
    auto copy = MakeNode<FunctionCallExpr>(name);
    copy->distinct = distinct;
    copy->args.reserve(args.size());
    for (const auto& a : args) copy->args.push_back(a->Clone());
    return copy;
  }

  std::string name;
  bool distinct = false;
  std::vector<ExprPtr> args;
};

/// Unary operation: NOT x, -x, +x.
class UnaryExpr final : public Expr {
 public:
  UnaryExpr(UnaryOp op, ExprPtr operand)
      : Expr(ExprKind::kUnary), op(op), operand(std::move(operand)) {}

  ExprPtr Clone() const override {
    return MakeNode<UnaryExpr>(op, operand->Clone());
  }

  UnaryOp op;
  ExprPtr operand;
};

/// Binary operation: comparisons, AND/OR, arithmetic.
class BinaryExpr final : public Expr {
 public:
  BinaryExpr(BinaryOp op, ExprPtr lhs, ExprPtr rhs)
      : Expr(ExprKind::kBinary), op(op), lhs(std::move(lhs)), rhs(std::move(rhs)) {}

  ExprPtr Clone() const override {
    return MakeNode<BinaryExpr>(op, lhs->Clone(), rhs->Clone());
  }

  BinaryOp op;
  ExprPtr lhs;
  ExprPtr rhs;
};

/// `x BETWEEN lo AND hi` (optionally NOT).
class BetweenExpr final : public Expr {
 public:
  BetweenExpr(ExprPtr operand, ExprPtr low, ExprPtr high, bool negated)
      : Expr(ExprKind::kBetween),
        operand(std::move(operand)),
        low(std::move(low)),
        high(std::move(high)),
        negated(negated) {}

  ExprPtr Clone() const override {
    return MakeNode<BetweenExpr>(operand->Clone(), low->Clone(), high->Clone(),
                                 negated);
  }

  ExprPtr operand;
  ExprPtr low;
  ExprPtr high;
  bool negated;
};

/// `x IN (v1, v2, ...)` (optionally NOT).
class InListExpr final : public Expr {
 public:
  InListExpr(ExprPtr operand, std::vector<ExprPtr> items, bool negated)
      : Expr(ExprKind::kInList),
        operand(std::move(operand)),
        items(std::move(items)),
        negated(negated) {}

  ExprPtr Clone() const override {
    std::vector<ExprPtr> copy_items;
    copy_items.reserve(items.size());
    for (const auto& e : items) copy_items.push_back(e->Clone());
    return MakeNode<InListExpr>(operand->Clone(), std::move(copy_items), negated);
  }

  ExprPtr operand;
  std::vector<ExprPtr> items;
  bool negated;
};

/// `x IN (SELECT ...)` (optionally NOT). Declared after SelectStatement's
/// forward declaration; Clone is defined out of line in ast.cc.
class InSubqueryExpr final : public Expr {
 public:
  InSubqueryExpr(ExprPtr operand, StmtPtr subquery, bool negated);
  ~InSubqueryExpr() override;

  ExprPtr Clone() const override;

  ExprPtr operand;
  StmtPtr subquery;
  bool negated;
};

/// `EXISTS (SELECT ...)` (optionally NOT).
class ExistsExpr final : public Expr {
 public:
  ExistsExpr(StmtPtr subquery, bool negated);
  ~ExistsExpr() override;

  ExprPtr Clone() const override;

  StmtPtr subquery;
  bool negated;
};

/// `x IS NULL` / `x IS NOT NULL`.
class IsNullExpr final : public Expr {
 public:
  IsNullExpr(ExprPtr operand, bool negated)
      : Expr(ExprKind::kIsNull), operand(std::move(operand)), negated(negated) {}

  ExprPtr Clone() const override {
    return MakeNode<IsNullExpr>(operand->Clone(), negated);
  }

  ExprPtr operand;
  bool negated;
};

/// `x LIKE pattern` (optionally NOT).
class LikeExpr final : public Expr {
 public:
  LikeExpr(ExprPtr operand, ExprPtr pattern, bool negated)
      : Expr(ExprKind::kLike),
        operand(std::move(operand)),
        pattern(std::move(pattern)),
        negated(negated) {}

  ExprPtr Clone() const override {
    return MakeNode<LikeExpr>(operand->Clone(), pattern->Clone(), negated);
  }

  ExprPtr operand;
  ExprPtr pattern;
  bool negated;
};

/// Scalar subquery `(SELECT ...)` used as an expression.
class SubqueryExpr final : public Expr {
 public:
  explicit SubqueryExpr(StmtPtr subquery);
  ~SubqueryExpr() override;

  ExprPtr Clone() const override;

  StmtPtr subquery;
};

/// `CASE WHEN cond THEN value [...] [ELSE value] END`. Searched form
/// only; the simple form is normalized by the parser into the searched
/// form (`CASE x WHEN v` ⇒ `WHEN x = v`).
class CaseExpr final : public Expr {
 public:
  CaseExpr() : Expr(ExprKind::kCase) {}

  ExprPtr Clone() const override {
    auto copy = MakeNode<CaseExpr>();
    copy->branches.reserve(branches.size());
    for (const auto& b : branches) {
      copy->branches.push_back(Branch{b.condition->Clone(), b.value->Clone()});
    }
    if (else_value) copy->else_value = else_value->Clone();
    return copy;
  }

  struct Branch {
    ExprPtr condition;
    ExprPtr value;
  };
  std::vector<Branch> branches;
  ExprPtr else_value;  // may be null
};

// ---------------------------------------------------------------------------
// FROM clause
// ---------------------------------------------------------------------------

/// Discriminator for FromItem subclasses.
enum class FromKind {
  kTable,
  kTableFunction,
  kSubquery,
  kJoin,
};

/// Join flavours supported by the dialect.
enum class JoinType {
  kInner,
  kLeftOuter,
  kRightOuter,
  kFullOuter,
  kCross,
};

/// Base class of FROM-clause items.
class FromItem : public AstNode {
 public:
  explicit FromItem(FromKind kind) : kind_(kind) {}
  virtual ~FromItem() = default;

  FromItem(const FromItem&) = delete;
  FromItem& operator=(const FromItem&) = delete;

  FromKind kind() const { return kind_; }
  virtual FromItemPtr Clone() const = 0;

 private:
  FromKind kind_;
};

/// Plain table reference: `dbo.SpecObjAll AS s`.
class TableRef final : public FromItem {
 public:
  TableRef(std::string schema, std::string table, std::string alias)
      : FromItem(FromKind::kTable),
        schema(std::move(schema)),
        table(std::move(table)),
        alias(std::move(alias)) {}

  FromItemPtr Clone() const override {
    return MakeNode<TableRef>(schema, table, alias);
  }

  std::string schema;  // empty when unqualified
  std::string table;
  std::string alias;  // empty when none
};

/// Table-valued function: `fgetnearbyobjeq(@ra, @dec, @r) AS n`.
class TableFunctionRef final : public FromItem {
 public:
  TableFunctionRef(std::string schema, std::string name, std::string alias)
      : FromItem(FromKind::kTableFunction),
        schema(std::move(schema)),
        name(std::move(name)),
        alias(std::move(alias)) {}

  FromItemPtr Clone() const override {
    auto copy = MakeNode<TableFunctionRef>(schema, name, alias);
    copy->args.reserve(args.size());
    for (const auto& a : args) copy->args.push_back(a->Clone());
    return copy;
  }

  std::string schema;
  std::string name;
  std::string alias;
  std::vector<ExprPtr> args;
};

/// Derived table: `(SELECT ...) AS o`.
class SubqueryRef final : public FromItem {
 public:
  SubqueryRef(StmtPtr subquery, std::string alias);
  ~SubqueryRef() override;

  FromItemPtr Clone() const override;

  StmtPtr subquery;
  std::string alias;
};

/// Binary join tree node: `left JOIN right ON condition`.
class JoinRef final : public FromItem {
 public:
  JoinRef(JoinType join_type, FromItemPtr left, FromItemPtr right, ExprPtr condition)
      : FromItem(FromKind::kJoin),
        join_type(join_type),
        left(std::move(left)),
        right(std::move(right)),
        condition(std::move(condition)) {}

  FromItemPtr Clone() const override {
    return MakeNode<JoinRef>(join_type, left->Clone(), right->Clone(),
                             condition ? condition->Clone() : nullptr);
  }

  JoinType join_type;
  FromItemPtr left;
  FromItemPtr right;
  ExprPtr condition;  // null for CROSS JOIN
};

// ---------------------------------------------------------------------------
// SELECT statement
// ---------------------------------------------------------------------------

/// One select-list item: expression plus optional alias.
struct SelectItem {
  ExprPtr expr;
  std::string alias;  // empty when none

  SelectItem() = default;
  SelectItem(ExprPtr e, std::string a) : expr(std::move(e)), alias(std::move(a)) {}

  SelectItem Copy() const { return SelectItem(expr->Clone(), alias); }
};

/// One ORDER BY key.
struct OrderByItem {
  ExprPtr expr;
  bool descending = false;

  OrderByItem() = default;
  OrderByItem(ExprPtr e, bool desc) : expr(std::move(e)), descending(desc) {}

  OrderByItem Copy() const { return OrderByItem(expr->Clone(), descending); }
};

/// Full SELECT statement of the dialect:
///   SELECT [DISTINCT] [TOP n] items FROM from_items
///   [WHERE cond] [GROUP BY exprs [HAVING cond]] [ORDER BY keys]
///
/// The root statement of a parse is heap-allocated and owns the arena
/// holding its interior nodes; subquery statements live in the root's
/// arena (their `arena` member is null). `arena` is declared first so it
/// is destroyed last: member destructors release the interior nodes
/// before the chunks backing them disappear.
class SelectStatement : public AstNode {
 public:
  SelectStatement() = default;

  SelectStatement(const SelectStatement&) = delete;
  SelectStatement& operator=(const SelectStatement&) = delete;

  StmtPtr Clone() const {
    auto copy = MakeNode<SelectStatement>();
    copy->distinct = distinct;
    copy->top_count = top_count;
    copy->select_items.reserve(select_items.size());
    for (const auto& item : select_items) copy->select_items.push_back(item.Copy());
    copy->from_items.reserve(from_items.size());
    for (const auto& f : from_items) copy->from_items.push_back(f->Clone());
    if (where) copy->where = where->Clone();
    copy->group_by.reserve(group_by.size());
    for (const auto& g : group_by) copy->group_by.push_back(g->Clone());
    if (having) copy->having = having->Clone();
    copy->order_by.reserve(order_by.size());
    for (const auto& o : order_by) copy->order_by.push_back(o.Copy());
    return copy;
  }

  std::unique_ptr<AstArena> arena;  // set on root statements only

  bool distinct = false;
  long long top_count = -1;  // -1 when absent
  std::vector<SelectItem> select_items;
  std::vector<FromItemPtr> from_items;  // comma-separated FROM elements
  ExprPtr where;                        // null when absent
  std::vector<ExprPtr> group_by;
  ExprPtr having;  // null when absent
  std::vector<OrderByItem> order_by;
};

/// Coarse statement classification. Only SELECT statements are parsed
/// into ASTs; the pipeline filters the rest out (Sec. 5.3 of the paper).
enum class StatementKind {
  kSelect,
  kInsert,
  kUpdate,
  kDelete,
  kCreate,
  kDrop,
  kAlter,
  kOther,
};

/// Classifies a raw statement by its first keyword.
StatementKind ClassifyStatement(const std::string& statement_text);

/// Returns a stable name for a statement kind.
const char* StatementKindName(StatementKind kind);

}  // namespace sqlog::sql

#endif  // SQLOG_SQL_AST_H_
