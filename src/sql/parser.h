#ifndef SQLOG_SQL_PARSER_H_
#define SQLOG_SQL_PARSER_H_

#include <string_view>

#include "sql/ast.h"
#include "sql/token.h"
#include "util/status.h"

namespace sqlog::sql {

/// Maximum syntactic nesting depth the parser accepts: simultaneously
/// open nesting constructs (parenthesized expressions, subqueries,
/// NOT / unary-sign chains, parenthesized join trees, CASE expressions).
/// Hostile log input — fuzzing surfaced multi-kilobyte runs of '(' —
/// would otherwise overflow the recursive-descent parser's stack; past
/// the limit the statement yields a ParseError like any other broken
/// input, so the pipeline just drops it.
inline constexpr int kMaxParseDepth = 64;

/// Parses one SELECT statement of the dialect described in DESIGN.md
/// into an AST. Trailing semicolons are accepted. Non-SELECT statements
/// and syntax errors yield a ParseError status — never an exception —
/// matching the paper's parse step that simply drops such statements.
/// Nesting beyond kMaxParseDepth is rejected with a ParseError.
///
/// The returned root statement owns the arena backing its interior
/// nodes; the AST copies every token text it keeps, so it does not
/// reference `statement` after the call.
Result<StmtPtr> ParseSelect(std::string_view statement);

/// Same, over an already-lexed token stream (the stream must end with a
/// kEnd token, as produced by Lex). Lets callers that already lexed the
/// statement — e.g. to fingerprint it — parse without lexing twice.
/// `tokens` is borrowed only for the duration of the call.
Result<StmtPtr> ParseTokens(const TokenStream& tokens);

}  // namespace sqlog::sql

#endif  // SQLOG_SQL_PARSER_H_
