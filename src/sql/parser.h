#ifndef SQLOG_SQL_PARSER_H_
#define SQLOG_SQL_PARSER_H_

#include <memory>
#include <string_view>

#include "sql/ast.h"
#include "util/status.h"

namespace sqlog::sql {

/// Parses one SELECT statement of the dialect described in DESIGN.md
/// into an AST. Trailing semicolons are accepted. Non-SELECT statements
/// and syntax errors yield a ParseError status — never an exception —
/// matching the paper's parse step that simply drops such statements.
Result<std::unique_ptr<SelectStatement>> ParseSelect(std::string_view statement);

}  // namespace sqlog::sql

#endif  // SQLOG_SQL_PARSER_H_
