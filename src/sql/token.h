#ifndef SQLOG_SQL_TOKEN_H_
#define SQLOG_SQL_TOKEN_H_

#include <cstdint>
#include <string>

namespace sqlog::sql {

/// Lexical token categories for the SELECT dialect. SQL keywords are
/// lexed as kIdentifier; the parser matches them case-insensitively, so
/// the lexer needs no keyword table.
enum class TokenType {
  kIdentifier,   // photoPrimary, [Bracketed Name], "quoted name"
  kVariable,     // @ra, @dec (SkyServer logs keep T-SQL variables)
  kNumber,       // 42, 0.1, 1e-5, 0x1F
  kString,       // 'sales' (with '' escaping)
  kComma,        // ,
  kLParen,       // (
  kRParen,       // )
  kDot,          // .
  kSemicolon,    // ;
  kStar,         // *
  kPlus,         // +
  kMinus,        // -
  kSlash,        // /
  kPercent,      // %
  kEq,           // =
  kNotEq,        // <> or !=
  kLess,         // <
  kLessEq,       // <=
  kGreater,      // >
  kGreaterEq,    // >=
  kEnd,          // end of input
};

/// Returns a stable name for a token type (diagnostics and tests).
const char* TokenTypeName(TokenType type);

/// One lexical token. `text` holds the normalized payload: identifier
/// text without brackets/quotes, string text without surrounding quotes
/// (escapes resolved), number text verbatim.
struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;
  size_t offset = 0;  // byte offset in the original statement

  bool Is(TokenType t) const { return type == t; }
};

}  // namespace sqlog::sql

#endif  // SQLOG_SQL_TOKEN_H_
