#ifndef SQLOG_SQL_TOKEN_H_
#define SQLOG_SQL_TOKEN_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

namespace sqlog::sql {

/// Lexical token categories for the SELECT dialect. SQL keywords are
/// lexed as kIdentifier; the parser matches them case-insensitively, so
/// the lexer needs no keyword table.
enum class TokenType {
  kIdentifier,   // photoPrimary, [Bracketed Name], "quoted name"
  kVariable,     // @ra, @dec (SkyServer logs keep T-SQL variables)
  kNumber,       // 42, 0.1, 1e-5, 0x1F
  kString,       // 'sales' (with '' escaping)
  kComma,        // ,
  kLParen,       // (
  kRParen,       // )
  kDot,          // .
  kSemicolon,    // ;
  kStar,         // *
  kPlus,         // +
  kMinus,        // -
  kSlash,        // /
  kPercent,      // %
  kEq,           // =
  kNotEq,        // <> or !=
  kLess,         // <
  kLessEq,       // <=
  kGreater,      // >
  kGreaterEq,    // >=
  kEnd,          // end of input
};

/// Returns a stable name for a token type (diagnostics and tests).
const char* TokenTypeName(TokenType type);

/// One lexical token. `text` holds the normalized payload: identifier
/// text without brackets/quotes, string text without surrounding quotes
/// (escapes resolved), number text verbatim. The view points either into
/// the lexed statement or into the owning TokenStream's storage — it is
/// valid as long as both are alive.
struct Token {
  TokenType type = TokenType::kEnd;
  std::string_view text;
  size_t offset = 0;  // byte offset in the original statement
  size_t end = 0;     // one past the token's last raw byte in the statement

  bool Is(TokenType t) const { return type == t; }

  /// The token's raw byte extent in the original statement. For quoted
  /// tokens this spans the quotes, so it can differ from text.size().
  size_t raw_size() const { return end - offset; }
};

/// A lexed statement: the token vector plus owned storage for the few
/// token texts that cannot alias the input (escaped strings, quoted
/// identifiers with doubled quotes, case-normalized hex prefixes).
/// Movable but not copyable, so token views can never dangle by
/// accident; the lexed statement must outlive the stream.
class TokenStream {
 public:
  TokenStream() = default;
  TokenStream(TokenStream&&) = default;
  TokenStream& operator=(TokenStream&&) = default;
  TokenStream(const TokenStream&) = delete;
  TokenStream& operator=(const TokenStream&) = delete;

  std::vector<Token> tokens;

  size_t size() const { return tokens.size(); }
  bool empty() const { return tokens.empty(); }
  const Token& operator[](size_t i) const { return tokens[i]; }
  const Token& front() const { return tokens.front(); }
  const Token& back() const { return tokens.back(); }
  auto begin() const { return tokens.begin(); }
  auto end() const { return tokens.end(); }

  /// Copies `text` into stream-owned storage and returns a stable view
  /// of it (std::deque never relocates existing elements).
  std::string_view Materialize(std::string text) {
    owned_.push_back(std::move(text));
    return owned_.back();
  }

 private:
  std::deque<std::string> owned_;
};

}  // namespace sqlog::sql

#endif  // SQLOG_SQL_TOKEN_H_
