#ifndef SQLOG_SQL_SKELETON_H_
#define SQLOG_SQL_SKELETON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sql/ast.h"
#include "sql/token.h"
#include "util/status.h"

namespace sqlog::sql {

/// Leaf predicate shapes recognized in WHERE clauses.
enum class PredicateOp {
  kEq,
  kNotEq,
  kLess,
  kLessEq,
  kGreater,
  kGreaterEq,
  kBetween,
  kIn,
  kLike,
  kIsNull,
  kIsNotNull,
  kOther,  // joins predicates, subqueries, function comparisons, ...
};

/// Returns a stable name for a predicate operator.
const char* PredicateOpName(PredicateOp op);

/// One leaf predicate extracted from a WHERE clause. The Stifle and CTH
/// definitions (Defs. 11 and 15) are phrased over these features: CP is
/// the number of leaf predicates, θ the comparison operator, filCol the
/// filtered column.
struct Predicate {
  PredicateOp op = PredicateOp::kOther;
  std::string qualifier;  // lower-cased column qualifier, may be empty
  std::string column;     // lower-cased filter column, empty when not a column
  /// Constant operand(s) as canonical text: 1 for comparisons, 2 for
  /// BETWEEN, n for IN lists.
  std::vector<std::string> values;
  /// True when the predicate compares a column against literal /
  /// variable constants (not another column or subquery).
  bool constant_comparison = false;
  /// True for `col = NULL` / `col <> NULL` — the SNC antipattern
  /// (Def. 16) triggers on these.
  bool compares_to_null_literal = false;
  /// True when one comparison side applies a function or arithmetic to
  /// exactly one column and the other side is a constant —
  /// `upper(name) = 'X'`, `objid + 1 < 5`. The shape the non-sargable
  /// detector flags. `op` stays kOther and `constant_comparison` stays
  /// false so the Stifle/CTH eligibility rules (which demand plain
  /// column comparisons) are unaffected; `column`/`qualifier` name the
  /// wrapped column.
  bool lhs_computed = false;
  /// The underlying comparison operator of a computed-column predicate
  /// (mirrored when the computed side is on the right).
  PredicateOp computed_op = PredicateOp::kOther;
  /// Lower-cased function name ("upper") or arithmetic operator
  /// spelling ("+", "-", "*", "/", "%") applied to the column.
  std::string computed_fn;
  /// True when both operands are plain column references under `=` — a
  /// join condition such as `n.objid = p.objid`; `column` records the
  /// left-hand column. Its absence over a multi-table FROM is the
  /// implicit-cross-join smell.
  bool column_equijoin = false;
};

/// The query template of Definition 4: the skeleton triple (SFC, SWC,
/// SSC) plus the tail (GROUP/ORDER/TOP) that also shapes a template.
struct QueryTemplate {
  std::string ssc;   // skeleton SELECT clause
  std::string sfc;   // skeleton FROM clause
  std::string swc;   // skeleton WHERE clause
  std::string tail;  // skeleton GROUP BY / HAVING / ORDER BY
  uint64_t fingerprint = 0;

  bool operator==(const QueryTemplate& other) const {
    return fingerprint == other.fingerprint && ssc == other.ssc && sfc == other.sfc &&
           swc == other.swc && tail == other.tail;
  }
};

/// Everything the pipeline needs to know about one parsed SELECT:
/// concrete clause texts (SC/FC/WC of Def. 3), the skeleton template,
/// predicate features, output columns and source tables.
struct QueryFacts {
  std::shared_ptr<const SelectStatement> ast;

  QueryTemplate tmpl;
  std::string sc;  // concrete canonical SELECT clause
  std::string fc;  // concrete canonical FROM clause
  std::string wc;  // concrete canonical WHERE clause

  std::vector<Predicate> predicates;
  /// True when the WHERE tree is a pure AND-conjunction of leaves (no OR
  /// / NOT above leaf level); several detection rules require this.
  bool where_conjunctive = true;

  /// Lower-cased output column names (from select list; aliases win),
  /// used for the CTH "selected attribute reappears as filter" rule.
  std::vector<std::string> selected_columns;
  bool selects_star = false;

  /// Lower-cased base-table names reachable in FROM (join trees are
  /// flattened; subqueries contribute their own tables).
  std::vector<std::string> tables;
  /// Lower-cased table-valued function names in FROM.
  std::vector<std::string> table_functions;
  /// Count of top-level (comma-separated) FROM items. Explicit JOIN
  /// trees count as one item; implicit cross joins have ≥ 2.
  int from_item_count = 0;

  /// Count of leaf predicates — the paper's CP.
  int predicate_count() const { return static_cast<int>(predicates.size()); }
};

/// Computes the skeleton template of a statement.
QueryTemplate MakeTemplate(const SelectStatement& stmt);

/// Full analysis: template, concrete clauses, predicates, columns,
/// tables. Never fails for a parsed statement; the Result carries the
/// analyzed value for API symmetry with ParseSelect.
///
/// When `predicate_value_exprs` is non-null it receives, in order, the
/// AST node behind every entry of every `Predicate::values` vector (one
/// Expr* per value, flattened across predicates). The parse cache uses
/// this to map predicate values back to literal slots.
QueryFacts Analyze(std::shared_ptr<const SelectStatement> stmt,
                   std::vector<const Expr*>* predicate_value_exprs = nullptr);

/// Parses and analyzes in one step.
Result<QueryFacts> ParseAndAnalyze(const std::string& statement_text);

/// Same, over an already-lexed token stream — callers that lexed the
/// statement to fingerprint it avoid lexing twice on a cache miss.
Result<QueryFacts> ParseAndAnalyzeTokens(
    const TokenStream& tokens,
    std::vector<const Expr*>* predicate_value_exprs = nullptr);

}  // namespace sqlog::sql

#endif  // SQLOG_SQL_SKELETON_H_
