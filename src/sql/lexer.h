#ifndef SQLOG_SQL_LEXER_H_
#define SQLOG_SQL_LEXER_H_

#include <string_view>
#include <vector>

#include "sql/token.h"
#include "util/status.h"

namespace sqlog::sql {

/// Tokenizes one SQL statement. Supports:
///   - `--` line comments and `/* ... */` block comments,
///   - single-quoted strings with `''` escaping,
///   - `[bracketed]` and `"double-quoted"` identifiers,
///   - integer, decimal, scientific and 0x hex numeric literals,
///   - T-SQL `@variables`.
/// The returned vector is terminated by a kEnd token. Lexing never
/// throws; malformed input yields a ParseError status.
Result<std::vector<Token>> Lex(std::string_view statement);

}  // namespace sqlog::sql

#endif  // SQLOG_SQL_LEXER_H_
