#ifndef SQLOG_SQL_LEXER_H_
#define SQLOG_SQL_LEXER_H_

#include <string_view>
#include <vector>

#include "sql/token.h"
#include "util/status.h"

namespace sqlog::sql {

/// Tokenizes one SQL statement. Supports:
///   - `--` line comments and `/* ... */` block comments,
///   - single-quoted strings with `''` escaping,
///   - `[bracketed]` and `"double-quoted"` identifiers,
///   - integer, decimal, scientific and 0x hex numeric literals,
///   - T-SQL `@variables`.
/// The returned stream is terminated by a kEnd token. Token texts are
/// views into `statement` (or into the stream itself where escape
/// processing forced a rewrite) — `statement` must outlive the stream.
/// Lexing never throws; malformed input yields a ParseError status.
Result<TokenStream> Lex(std::string_view statement);

}  // namespace sqlog::sql

#endif  // SQLOG_SQL_LEXER_H_
