#include "sql/printer.h"

#include "util/byte_class.h"

#include "util/string_util.h"

namespace sqlog::sql {

namespace {

/// Stateful renderer; one instance per Print call.
class Printer {
 public:
  explicit Printer(const PrintOptions& options) : options_(options) {}

  /// True when `name` lexes back as one bare identifier token; names
  /// from `[bracketed]` / `"quoted"` sources can hold spaces or
  /// punctuation and must be re-quoted or the print does not reparse
  /// (found by the parse→print→parse fuzz oracle).
  static bool LexesBare(const std::string& name) {
    if (name.empty()) return false;
    char first = name[0];
    if (!IsIdentStartByte(first)) {
      return false;
    }
    for (char c : name) {
      if (!IsIdentCharByte(c)) {
        return false;
      }
    }
    return true;
  }

  std::string Ident(const std::string& name) const {
    std::string text = options_.canonical ? ToLower(name) : name;
    if (LexesBare(text)) return text;
    std::string quoted;
    quoted.push_back('"');
    for (char c : text) {
      if (c == '"') quoted.push_back('"');
      quoted.push_back(c);
    }
    quoted.push_back('"');
    return quoted;
  }

  void PrintExpr(const Expr& expr, std::string& out) const {
    switch (expr.kind()) {
      case ExprKind::kLiteral: {
        const auto& lit = static_cast<const LiteralExpr&>(expr);
        if (options_.placeholders) {
          switch (lit.literal_kind) {
            case LiteralKind::kNumber: out += "<num>"; return;
            case LiteralKind::kString: out += "<str>"; return;
            case LiteralKind::kNull: out += "null"; return;
          }
        }
        switch (lit.literal_kind) {
          case LiteralKind::kNumber: {
            size_t begin = out.size();
            out += lit.text;
            RecordSlot(lit, begin, out.size());
            return;
          }
          case LiteralKind::kString: {
            size_t begin = out.size();
            out.push_back('\'');
            for (char c : lit.text) {
              if (c == '\'') out.push_back('\'');
              out.push_back(c);
            }
            out.push_back('\'');
            RecordSlot(lit, begin, out.size());
            return;
          }
          case LiteralKind::kNull:
            out += options_.canonical ? "null" : lit.text;
            return;
        }
        return;
      }
      case ExprKind::kColumnRef: {
        const auto& col = static_cast<const ColumnRefExpr&>(expr);
        if (!col.qualifier.empty()) {
          out += Ident(col.qualifier);
          out.push_back('.');
        }
        out += Ident(col.name);
        return;
      }
      case ExprKind::kStar: {
        const auto& star = static_cast<const StarExpr&>(expr);
        if (!star.qualifier.empty()) {
          out += Ident(star.qualifier);
          out.push_back('.');
        }
        out.push_back('*');
        return;
      }
      case ExprKind::kVariable: {
        const auto& var = static_cast<const VariableExpr&>(expr);
        if (options_.placeholders) {
          out += "<num>";  // log variables stand for constants
          return;
        }
        // Variable names lex as '@' followed by any identifier characters
        // (digits may lead), so they are printed verbatim — quoting would
        // produce '@"..."', which does not lex.
        out.push_back('@');
        out += options_.canonical ? ToLower(var.name) : var.name;
        return;
      }
      case ExprKind::kFunctionCall: {
        const auto& fn = static_cast<const FunctionCallExpr&>(expr);
        out += Ident(fn.name);
        out.push_back('(');
        if (fn.distinct) out += "distinct ";
        for (size_t i = 0; i < fn.args.size(); ++i) {
          if (i > 0) out += ", ";
          PrintExpr(*fn.args[i], out);
        }
        out.push_back(')');
        return;
      }
      case ExprKind::kUnary: {
        const auto& unary = static_cast<const UnaryExpr&>(expr);
        switch (unary.op) {
          case UnaryOp::kNot: out += "not "; break;
          case UnaryOp::kMinus: out.push_back('-'); break;
          case UnaryOp::kPlus: out.push_back('+'); break;
        }
        size_t mark = Mark();
        std::string operand;
        PrintExpr(*unary.operand, operand);
        // An operand that itself starts with '-' (nested unary minus or a
        // folded negative literal) would fuse with a minus sign into the
        // line-comment introducer `--`, silently truncating the reparse.
        // Boolean-level operands under -/+ (only buildable from explicit
        // parens, e.g. `-(NOT x)`) must keep their parens to reparse.
        bool parens = unary.operand->kind() == ExprKind::kBinary ||
                      (unary.op != UnaryOp::kNot &&
                       IsBooleanLevelNode(*unary.operand)) ||
                      (unary.op == UnaryOp::kMinus && !operand.empty() &&
                       operand.front() == '-');
        if (parens) out.push_back('(');
        AppendShifted(out, operand, mark);
        if (parens) out.push_back(')');
        return;
      }
      case ExprKind::kBinary: {
        const auto& bin = static_cast<const BinaryExpr&>(expr);
        PrintOperand(*bin.lhs, bin.op, /*is_rhs=*/false, out);
        out.push_back(' ');
        out += BinaryOpText(bin.op);
        out.push_back(' ');
        PrintOperand(*bin.rhs, bin.op, /*is_rhs=*/true, out);
        return;
      }
      case ExprKind::kBetween: {
        const auto& between = static_cast<const BetweenExpr&>(expr);
        PrintAdditiveOperand(*between.operand, out);
        out += between.negated ? " not between " : " between ";
        PrintAdditiveOperand(*between.low, out);
        out += " and ";
        PrintAdditiveOperand(*between.high, out);
        return;
      }
      case ExprKind::kInList: {
        const auto& in = static_cast<const InListExpr&>(expr);
        PrintAdditiveOperand(*in.operand, out);
        out += in.negated ? " not in (" : " in (";
        if (options_.placeholders) {
          // A skeleton abstracts the arity of the IN list too; otherwise
          // `IN (1,2)` and `IN (1,2,3)` would be different templates.
          out += "<list>";
        } else {
          for (size_t i = 0; i < in.items.size(); ++i) {
            if (i > 0) out += ", ";
            PrintExpr(*in.items[i], out);
          }
        }
        out.push_back(')');
        return;
      }
      case ExprKind::kInSubquery: {
        const auto& in = static_cast<const InSubqueryExpr&>(expr);
        PrintAdditiveOperand(*in.operand, out);
        out += in.negated ? " not in (" : " in (";
        size_t mark = Mark();
        AppendShifted(out, PrintStatement(*in.subquery), mark);
        out.push_back(')');
        return;
      }
      case ExprKind::kExists: {
        const auto& exists = static_cast<const ExistsExpr&>(expr);
        if (exists.negated) out += "not ";
        out += "exists (";
        size_t mark = Mark();
        AppendShifted(out, PrintStatement(*exists.subquery), mark);
        out.push_back(')');
        return;
      }
      case ExprKind::kIsNull: {
        const auto& is_null = static_cast<const IsNullExpr&>(expr);
        PrintAdditiveOperand(*is_null.operand, out);
        out += is_null.negated ? " is not null" : " is null";
        return;
      }
      case ExprKind::kLike: {
        const auto& like = static_cast<const LikeExpr&>(expr);
        PrintAdditiveOperand(*like.operand, out);
        out += like.negated ? " not like " : " like ";
        PrintAdditiveOperand(*like.pattern, out);
        return;
      }
      case ExprKind::kSubquery: {
        const auto& sub = static_cast<const SubqueryExpr&>(expr);
        out.push_back('(');
        size_t mark = Mark();
        AppendShifted(out, PrintStatement(*sub.subquery), mark);
        out.push_back(')');
        return;
      }
      case ExprKind::kCase: {
        const auto& case_expr = static_cast<const CaseExpr&>(expr);
        out += "case";
        for (const auto& branch : case_expr.branches) {
          out += " when ";
          PrintExpr(*branch.condition, out);
          out += " then ";
          PrintExpr(*branch.value, out);
        }
        if (case_expr.else_value) {
          out += " else ";
          PrintExpr(*case_expr.else_value, out);
        }
        out += " end";
        return;
      }
    }
  }

  void PrintFromItem(const FromItem& item, std::string& out) const {
    switch (item.kind()) {
      case FromKind::kTable: {
        const auto& table = static_cast<const TableRef&>(item);
        if (!table.schema.empty()) {
          out += Ident(table.schema);
          out.push_back('.');
        }
        out += Ident(table.table);
        if (!table.alias.empty()) {
          out += " as ";
          out += Ident(table.alias);
        }
        return;
      }
      case FromKind::kTableFunction: {
        const auto& fn = static_cast<const TableFunctionRef&>(item);
        if (!fn.schema.empty()) {
          out += Ident(fn.schema);
          out.push_back('.');
        }
        out += Ident(fn.name);
        out.push_back('(');
        for (size_t i = 0; i < fn.args.size(); ++i) {
          if (i > 0) out += ", ";
          PrintExpr(*fn.args[i], out);
        }
        out.push_back(')');
        if (!fn.alias.empty()) {
          out += " as ";
          out += Ident(fn.alias);
        }
        return;
      }
      case FromKind::kSubquery: {
        const auto& sub = static_cast<const SubqueryRef&>(item);
        out.push_back('(');
        size_t mark = Mark();
        AppendShifted(out, PrintStatement(*sub.subquery), mark);
        out.push_back(')');
        if (!sub.alias.empty()) {
          out += " as ";
          out += Ident(sub.alias);
        }
        return;
      }
      case FromKind::kJoin: {
        const auto& join = static_cast<const JoinRef&>(item);
        PrintFromItem(*join.left, out);
        switch (join.join_type) {
          case JoinType::kInner: out += " inner join "; break;
          case JoinType::kLeftOuter: out += " left outer join "; break;
          case JoinType::kRightOuter: out += " right outer join "; break;
          case JoinType::kFullOuter: out += " full outer join "; break;
          case JoinType::kCross: out += " cross join "; break;
        }
        PrintFromItem(*join.right, out);
        if (join.condition) {
          out += " on ";
          PrintExpr(*join.condition, out);
        }
        return;
      }
    }
  }

  std::string PrintSelectList(const SelectStatement& stmt) const {
    std::string out = "select ";
    if (stmt.distinct) out += "distinct ";
    if (stmt.top_count >= 0) {
      out += "top ";
      out += std::to_string(stmt.top_count);
      out.push_back(' ');
    }
    for (size_t i = 0; i < stmt.select_items.size(); ++i) {
      if (i > 0) out += ", ";
      PrintExpr(*stmt.select_items[i].expr, out);
      if (!stmt.select_items[i].alias.empty()) {
        out += " as ";
        out += Ident(stmt.select_items[i].alias);
      }
    }
    return out;
  }

  std::string PrintFrom(const SelectStatement& stmt) const {
    if (stmt.from_items.empty()) return "";
    std::string out = "from ";
    for (size_t i = 0; i < stmt.from_items.size(); ++i) {
      if (i > 0) out += ", ";
      PrintFromItem(*stmt.from_items[i], out);
    }
    return out;
  }

  std::string PrintWhere(const SelectStatement& stmt) const {
    if (!stmt.where) return "";
    std::string out = "where ";
    PrintExpr(*stmt.where, out);
    return out;
  }

  std::string PrintTail(const SelectStatement& stmt) const {
    std::string out;
    if (!stmt.group_by.empty()) {
      out += "group by ";
      for (size_t i = 0; i < stmt.group_by.size(); ++i) {
        if (i > 0) out += ", ";
        PrintExpr(*stmt.group_by[i], out);
      }
      if (stmt.having) {
        out += " having ";
        PrintExpr(*stmt.having, out);
      }
    }
    if (!stmt.order_by.empty()) {
      if (!out.empty()) out.push_back(' ');
      out += "order by ";
      for (size_t i = 0; i < stmt.order_by.size(); ++i) {
        if (i > 0) out += ", ";
        PrintExpr(*stmt.order_by[i].expr, out);
        if (stmt.order_by[i].descending) out += " desc";
      }
    }
    return out;
  }

  std::string PrintStatement(const SelectStatement& stmt) const {
    std::string out = PrintSelectList(stmt);
    size_t mark = Mark();
    std::string from = PrintFrom(stmt);
    if (!from.empty()) {
      out.push_back(' ');
      AppendShifted(out, from, mark);
    }
    mark = Mark();
    std::string where = PrintWhere(stmt);
    if (!where.empty()) {
      out.push_back(' ');
      AppendShifted(out, where, mark);
    }
    mark = Mark();
    std::string tail = PrintTail(stmt);
    if (!tail.empty()) {
      out.push_back(' ');
      AppendShifted(out, tail, mark);
    }
    return out;
  }

 private:
  // --- literal-slot recording ----------------------------------------------
  //
  // Slots are recorded with offsets relative to the string currently
  // being written. Wherever the printer splices a separately built piece
  // (unary operands, subquery statements, the clause strings inside
  // PrintStatement), the slots recorded while building that piece are
  // shifted to the splice position, so every slot a public Print call
  // reports is relative to the string that call returns.

  void RecordSlot(const LiteralExpr& lit, size_t begin, size_t end) const {
    if (options_.literal_sink == nullptr) return;
    options_.literal_sink->push_back(LiteralSlot{&lit, begin, end});
  }

  /// Watermark into the sink taken before building a spliced piece.
  size_t Mark() const {
    return options_.literal_sink ? options_.literal_sink->size() : 0;
  }

  /// Appends `piece` to `out`, shifting the slots recorded since `mark`
  /// (they are relative to `piece`) to their final positions in `out`.
  void AppendShifted(std::string& out, const std::string& piece, size_t mark) const {
    if (options_.literal_sink != nullptr) {
      size_t base = out.size();
      auto& sink = *options_.literal_sink;
      for (size_t i = mark; i < sink.size(); ++i) {
        sink[i].begin += base;
        sink[i].end += base;
      }
    }
    out += piece;
  }

  static const char* BinaryOpText(BinaryOp op) {
    switch (op) {
      case BinaryOp::kAnd: return "and";
      case BinaryOp::kOr: return "or";
      case BinaryOp::kEq: return "=";
      case BinaryOp::kNotEq: return "<>";
      case BinaryOp::kLess: return "<";
      case BinaryOp::kLessEq: return "<=";
      case BinaryOp::kGreater: return ">";
      case BinaryOp::kGreaterEq: return ">=";
      case BinaryOp::kAdd: return "+";
      case BinaryOp::kSub: return "-";
      case BinaryOp::kMul: return "*";
      case BinaryOp::kDiv: return "/";
      case BinaryOp::kMod: return "%";
    }
    return "?";
  }

  static int Precedence(BinaryOp op) {
    switch (op) {
      case BinaryOp::kOr: return 1;
      case BinaryOp::kAnd: return 2;
      case BinaryOp::kEq:
      case BinaryOp::kNotEq:
      case BinaryOp::kLess:
      case BinaryOp::kLessEq:
      case BinaryOp::kGreater:
      case BinaryOp::kGreaterEq: return 3;
      case BinaryOp::kAdd:
      case BinaryOp::kSub: return 4;
      case BinaryOp::kMul:
      case BinaryOp::kDiv:
      case BinaryOp::kMod: return 5;
    }
    return 0;
  }

  /// True for nodes the grammar only accepts at the boolean level,
  /// directly under NOT/AND/OR: NOT itself and the predicate forms.
  /// Anywhere an additive-level operand is expected, such a node can only
  /// have come from explicit source parentheses, and printing it bare
  /// would not reparse (`ra < not x` is a parse error — fuzz-found).
  static bool IsBooleanLevelNode(const Expr& expr) {
    switch (expr.kind()) {
      case ExprKind::kUnary:
        return static_cast<const UnaryExpr&>(expr).op == UnaryOp::kNot;
      case ExprKind::kBetween:
      case ExprKind::kInList:
      case ExprKind::kInSubquery:
      case ExprKind::kExists:
      case ExprKind::kIsNull:
      case ExprKind::kLike:
        return true;
      default:
        return false;
    }
  }

  /// Prints `expr` where the grammar expects an additive-level operand
  /// (BETWEEN bounds, LIKE patterns, the left operand of a predicate),
  /// re-parenthesizing boolean-level nodes and binary operators at or
  /// below comparison precedence — e.g. `(a AND b) BETWEEN c AND d`
  /// printed bare would reparse as `a AND (b BETWEEN c AND d)`.
  void PrintAdditiveOperand(const Expr& expr, std::string& out) const {
    bool parens = IsBooleanLevelNode(expr);
    if (expr.kind() == ExprKind::kBinary) {
      parens = Precedence(static_cast<const BinaryExpr&>(expr).op) <=
               Precedence(BinaryOp::kEq);
    }
    if (parens) out.push_back('(');
    PrintExpr(expr, out);
    if (parens) out.push_back(')');
  }

  /// Parenthesizes child binary expressions so the printed text
  /// re-parses to the same tree: lower precedence than the parent,
  /// equal precedence on the right of a left-associative parent (the
  /// parser only builds such trees from explicit parens), and any
  /// comparison under a comparison — comparisons are non-associative, so
  /// `objid = (a = b)` printed bare does not reparse (fuzz-found).
  /// Boolean-level children under a comparison or arithmetic parent
  /// likewise need their parens back.
  void PrintOperand(const Expr& operand, BinaryOp parent_op, bool is_rhs,
                    std::string& out) const {
    bool parens = false;
    if (operand.kind() == ExprKind::kBinary) {
      const auto& child = static_cast<const BinaryExpr&>(operand);
      int child_prec = Precedence(child.op);
      int parent_prec = Precedence(parent_op);
      parens = child_prec < parent_prec ||
               (child_prec == parent_prec &&
                (is_rhs || Precedence(parent_op) == Precedence(BinaryOp::kEq)));
    } else if (IsBooleanLevelNode(operand)) {
      parens = Precedence(parent_op) >= Precedence(BinaryOp::kEq);
    }
    if (parens) out.push_back('(');
    PrintExpr(operand, out);
    if (parens) out.push_back(')');
  }

  const PrintOptions& options_;
};

}  // namespace

std::string Print(const SelectStatement& stmt, const PrintOptions& options) {
  return Printer(options).PrintStatement(stmt);
}

std::string Print(const Expr& expr, const PrintOptions& options) {
  std::string out;
  Printer(options).PrintExpr(expr, out);
  return out;
}

std::string PrintSelectClause(const SelectStatement& stmt, const PrintOptions& options) {
  return Printer(options).PrintSelectList(stmt);
}

std::string PrintFromClause(const SelectStatement& stmt, const PrintOptions& options) {
  return Printer(options).PrintFrom(stmt);
}

std::string PrintWhereClause(const SelectStatement& stmt, const PrintOptions& options) {
  return Printer(options).PrintWhere(stmt);
}

std::string PrintTailClauses(const SelectStatement& stmt, const PrintOptions& options) {
  return Printer(options).PrintTail(stmt);
}

}  // namespace sqlog::sql
