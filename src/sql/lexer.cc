#include "sql/lexer.h"

#include "util/byte_class.h"
#include "util/simd.h"
#include "util/string_util.h"

namespace sqlog::sql {

// Classification rides the locale-independent table in util/byte_class.h.
// The previous std::isalpha/isalnum/isdigit calls were a correctness bug:
// under a non-"C" global locale, bytes >= 0x80 classify as alphabetic and
// silently change tokenization (see lexer_test locale regression).

const char* TokenTypeName(TokenType type) {
  switch (type) {
    case TokenType::kIdentifier: return "identifier";
    case TokenType::kVariable: return "variable";
    case TokenType::kNumber: return "number";
    case TokenType::kString: return "string";
    case TokenType::kComma: return ",";
    case TokenType::kLParen: return "(";
    case TokenType::kRParen: return ")";
    case TokenType::kDot: return ".";
    case TokenType::kSemicolon: return ";";
    case TokenType::kStar: return "*";
    case TokenType::kPlus: return "+";
    case TokenType::kMinus: return "-";
    case TokenType::kSlash: return "/";
    case TokenType::kPercent: return "%";
    case TokenType::kEq: return "=";
    case TokenType::kNotEq: return "<>";
    case TokenType::kLess: return "<";
    case TokenType::kLessEq: return "<=";
    case TokenType::kGreater: return ">";
    case TokenType::kGreaterEq: return ">=";
    case TokenType::kEnd: return "<end>";
  }
  return "<unknown>";
}

Result<TokenStream> Lex(std::string_view s) {
  TokenStream stream;
  std::vector<Token>& tokens = stream.tokens;
  size_t i = 0;
  const size_t n = s.size();

  // One dispatched classification pass over the whole statement; the
  // skip loops below consume the bitmaps with inline bit scans instead
  // of one kernel dispatch per whitespace/identifier run.
  simd::ClassIndex classes;
  classes.Build(s);

  auto push = [&](TokenType type, std::string_view text, size_t offset, size_t end) {
    // sqlog-lint: allow(R10 token-vector growth is amortized across the statement; the vector lives in the returned stream)
    tokens.push_back(Token{type, text, offset, end});
  };

  // Scans a quoted region starting after the opening quote. `close` is
  // the closing character; when `doubling` is set a doubled close
  // character is an escape for one literal close character. On success
  // `i` is left after the closing quote and the (unescaped) payload is
  // pushed as `type` — as a view into `s` when no escape occurred, or as
  // stream-owned storage when unescaping had to rewrite bytes.
  auto lex_quoted = [&](TokenType type, char close, bool doubling,
                        const char* what) -> Status {
    size_t start = i;
    ++i;
    size_t body = i;
    bool escaped = false;
    while (i < n) {
      i = simd::FindByte(s, i, close);
      if (i >= n) break;
      if (doubling && i + 1 < n && s[i + 1] == close) {
        escaped = true;
        i += 2;
        continue;
      }
      break;
    }
    if (i >= n) {
      return Status::ParseError(StrFormat("unterminated %s at offset %zu", what, start));
    }
    std::string_view raw = s.substr(body, i - body);
    ++i;  // closing quote
    if (!escaped) {
      push(type, raw, start, i);
      return Status::OK();
    }
    std::string text;  // sqlog-lint: allow(R10 unescape path: runs only when a literal contains a doubled quote)
    text.reserve(raw.size());
    for (size_t k = 0; k < raw.size(); ++k) {
      // sqlog-lint: allow(R10 push into the reserved unescape buffer above)
      text.push_back(raw[k]);
      if (raw[k] == close) ++k;  // skip the doubled escape character
    }
    push(type, stream.Materialize(std::move(text)), start, i);
    return Status::OK();
  };

  while (i < n) {
    char c = s[i];
    // Whitespace: skip the whole run via the class bitmap.
    if (IsSpaceByte(c)) {
      i = classes.SkipSpace(i + 1);
      continue;
    }
    // Line comment.
    if (c == '-' && i + 1 < n && s[i + 1] == '-') {
      i = simd::FindByte(s, i + 2, '\n');
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && s[i + 1] == '*') {
      size_t start = i;
      i += 2;
      bool closed = false;
      while (i + 1 < n) {
        if (s[i] == '*' && s[i + 1] == '/') {
          i += 2;
          closed = true;
          break;
        }
        ++i;
      }
      if (!closed) {
        return Status::ParseError(
            StrFormat("unterminated block comment at offset %zu", start));
      }
      continue;
    }
    // String literal.
    if (c == '\'') {
      Status status = lex_quoted(TokenType::kString, '\'', true, "string literal");
      if (!status.ok()) return status;
      continue;
    }
    // Bracketed identifier (no escape for ']').
    if (c == '[') {
      Status status =
          lex_quoted(TokenType::kIdentifier, ']', false, "bracketed identifier");
      if (!status.ok()) return status;
      continue;
    }
    // Double-quoted identifier.
    if (c == '"') {
      Status status =
          lex_quoted(TokenType::kIdentifier, '"', true, "quoted identifier");
      if (!status.ok()) return status;
      continue;
    }
    // Variable.
    if (c == '@') {
      size_t start = i;
      ++i;
      size_t body = i;
      i = classes.SkipIdentRun(i);
      if (i == body) {
        return Status::ParseError(StrFormat("bare '@' at offset %zu", start));
      }
      push(TokenType::kVariable, s.substr(body, i - body), start, i);
      continue;
    }
    // Number. A leading digit, or a '.' followed by a digit.
    if (IsDigitByte(c) || (c == '.' && i + 1 < n && IsDigitByte(s[i + 1]))) {
      size_t start = i;
      if (c == '0' && i + 1 < n && (s[i + 1] == 'x' || s[i + 1] == 'X')) {
        bool upper = s[i + 1] == 'X';
        i += 2;
        size_t digits = i;
        while (i < n && IsHexDigitByte(s[i])) ++i;
        if (i == digits) {
          return Status::ParseError(StrFormat("malformed hex literal at offset %zu", start));
        }
        if (upper) {
          // Token text is normalized to a lowercase "0x" prefix.
          push(TokenType::kNumber,  // sqlog-lint: allow(R10 rewrite runs only for the rare upper-case 0X prefix)
               stream.Materialize("0x" + std::string(s.substr(digits, i - digits))),
               start, i);
        } else {
          push(TokenType::kNumber, s.substr(start, i - start), start, i);
        }
      } else {
        bool seen_dot = false;
        while (i < n && (IsDigitByte(s[i]) || (s[i] == '.' && !seen_dot))) {
          if (s[i] == '.') seen_dot = true;
          ++i;
        }
        // Exponent part. Backtracks when 'e' is not followed by digits,
        // so the token stays one contiguous slice of the input.
        if (i < n && (s[i] == 'e' || s[i] == 'E')) {
          size_t mark = i;
          ++i;
          if (i < n && (s[i] == '+' || s[i] == '-')) ++i;
          if (i < n && IsDigitByte(s[i])) {
            while (i < n && IsDigitByte(s[i])) ++i;
          } else {
            i = mark;  // 'e' starts an identifier, not an exponent
          }
        }
        push(TokenType::kNumber, s.substr(start, i - start), start, i);
      }
      continue;
    }
    // Identifier: skip the whole run via the class bitmap.
    if (IsIdentStartByte(c)) {
      size_t start = i;
      i = classes.SkipIdentRun(i + 1);
      push(TokenType::kIdentifier, s.substr(start, i - start), start, i);
      continue;
    }
    // Operators and punctuation. Texts are static strings.
    size_t start = i;
    switch (c) {
      case ',': push(TokenType::kComma, ",", start, start + 1); ++i; break;
      case '(': push(TokenType::kLParen, "(", start, start + 1); ++i; break;
      case ')': push(TokenType::kRParen, ")", start, start + 1); ++i; break;
      case '.': push(TokenType::kDot, ".", start, start + 1); ++i; break;
      case ';': push(TokenType::kSemicolon, ";", start, start + 1); ++i; break;
      case '*': push(TokenType::kStar, "*", start, start + 1); ++i; break;
      case '+': push(TokenType::kPlus, "+", start, start + 1); ++i; break;
      case '-': push(TokenType::kMinus, "-", start, start + 1); ++i; break;
      case '/': push(TokenType::kSlash, "/", start, start + 1); ++i; break;
      case '%': push(TokenType::kPercent, "%", start, start + 1); ++i; break;
      case '=': push(TokenType::kEq, "=", start, start + 1); ++i; break;
      case '!':
        if (i + 1 < n && s[i + 1] == '=') {
          push(TokenType::kNotEq, "!=", start, start + 2);
          i += 2;
        } else {
          return Status::ParseError(StrFormat("unexpected '!' at offset %zu", start));
        }
        break;
      case '<':
        if (i + 1 < n && s[i + 1] == '>') {
          push(TokenType::kNotEq, "<>", start, start + 2);
          i += 2;
        } else if (i + 1 < n && s[i + 1] == '=') {
          push(TokenType::kLessEq, "<=", start, start + 2);
          i += 2;
        } else {
          push(TokenType::kLess, "<", start, start + 1);
          ++i;
        }
        break;
      case '>':
        if (i + 1 < n && s[i + 1] == '=') {
          push(TokenType::kGreaterEq, ">=", start, start + 2);
          i += 2;
        } else {
          push(TokenType::kGreater, ">", start, start + 1);
          ++i;
        }
        break;
      default:
        return Status::ParseError(
            StrFormat("unexpected character '%c' (0x%02x) at offset %zu", c,
                      static_cast<unsigned char>(c), start));
    }
  }
  tokens.push_back(Token{TokenType::kEnd, {}, n, n});  // sqlog-lint: allow(R10 single sentinel push; capacity already amortized)
  return stream;
}

}  // namespace sqlog::sql
