#include "sql/lexer.h"

#include <cctype>

#include "util/string_util.h"

namespace sqlog::sql {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '#';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '$' || c == '#';
}

bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

}  // namespace

const char* TokenTypeName(TokenType type) {
  switch (type) {
    case TokenType::kIdentifier: return "identifier";
    case TokenType::kVariable: return "variable";
    case TokenType::kNumber: return "number";
    case TokenType::kString: return "string";
    case TokenType::kComma: return ",";
    case TokenType::kLParen: return "(";
    case TokenType::kRParen: return ")";
    case TokenType::kDot: return ".";
    case TokenType::kSemicolon: return ";";
    case TokenType::kStar: return "*";
    case TokenType::kPlus: return "+";
    case TokenType::kMinus: return "-";
    case TokenType::kSlash: return "/";
    case TokenType::kPercent: return "%";
    case TokenType::kEq: return "=";
    case TokenType::kNotEq: return "<>";
    case TokenType::kLess: return "<";
    case TokenType::kLessEq: return "<=";
    case TokenType::kGreater: return ">";
    case TokenType::kGreaterEq: return ">=";
    case TokenType::kEnd: return "<end>";
  }
  return "<unknown>";
}

Result<std::vector<Token>> Lex(std::string_view s) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = s.size();

  auto push = [&](TokenType type, std::string text, size_t offset) {
    tokens.push_back(Token{type, std::move(text), offset});
  };

  while (i < n) {
    char c = s[i];
    // Whitespace.
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' || c == '\v') {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '-' && i + 1 < n && s[i + 1] == '-') {
      while (i < n && s[i] != '\n') ++i;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && s[i + 1] == '*') {
      size_t start = i;
      i += 2;
      bool closed = false;
      while (i + 1 < n) {
        if (s[i] == '*' && s[i + 1] == '/') {
          i += 2;
          closed = true;
          break;
        }
        ++i;
      }
      if (!closed) {
        return Status::ParseError(
            StrFormat("unterminated block comment at offset %zu", start));
      }
      continue;
    }
    // String literal.
    if (c == '\'') {
      size_t start = i;
      ++i;
      std::string text;
      bool closed = false;
      while (i < n) {
        if (s[i] == '\'') {
          if (i + 1 < n && s[i + 1] == '\'') {
            text.push_back('\'');
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        text.push_back(s[i]);
        ++i;
      }
      if (!closed) {
        return Status::ParseError(
            StrFormat("unterminated string literal at offset %zu", start));
      }
      push(TokenType::kString, std::move(text), start);
      continue;
    }
    // Bracketed identifier.
    if (c == '[') {
      size_t start = i;
      ++i;
      std::string text;
      bool closed = false;
      while (i < n) {
        if (s[i] == ']') {
          ++i;
          closed = true;
          break;
        }
        text.push_back(s[i]);
        ++i;
      }
      if (!closed) {
        return Status::ParseError(
            StrFormat("unterminated bracketed identifier at offset %zu", start));
      }
      push(TokenType::kIdentifier, std::move(text), start);
      continue;
    }
    // Double-quoted identifier.
    if (c == '"') {
      size_t start = i;
      ++i;
      std::string text;
      bool closed = false;
      while (i < n) {
        if (s[i] == '"') {
          if (i + 1 < n && s[i + 1] == '"') {
            text.push_back('"');
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        text.push_back(s[i]);
        ++i;
      }
      if (!closed) {
        return Status::ParseError(
            StrFormat("unterminated quoted identifier at offset %zu", start));
      }
      push(TokenType::kIdentifier, std::move(text), start);
      continue;
    }
    // Variable.
    if (c == '@') {
      size_t start = i;
      ++i;
      std::string text;
      while (i < n && IsIdentChar(s[i])) {
        text.push_back(s[i]);
        ++i;
      }
      if (text.empty()) {
        return Status::ParseError(StrFormat("bare '@' at offset %zu", start));
      }
      push(TokenType::kVariable, std::move(text), start);
      continue;
    }
    // Number. A leading digit, or a '.' followed by a digit.
    if (IsDigit(c) || (c == '.' && i + 1 < n && IsDigit(s[i + 1]))) {
      size_t start = i;
      std::string text;
      if (c == '0' && i + 1 < n && (s[i + 1] == 'x' || s[i + 1] == 'X')) {
        text += "0x";
        i += 2;
        while (i < n && std::isxdigit(static_cast<unsigned char>(s[i]))) {
          text.push_back(s[i]);
          ++i;
        }
        if (text.size() == 2) {
          return Status::ParseError(StrFormat("malformed hex literal at offset %zu", start));
        }
      } else {
        bool seen_dot = false;
        while (i < n && (IsDigit(s[i]) || (s[i] == '.' && !seen_dot))) {
          if (s[i] == '.') seen_dot = true;
          text.push_back(s[i]);
          ++i;
        }
        // Exponent part.
        if (i < n && (s[i] == 'e' || s[i] == 'E')) {
          size_t mark = i;
          std::string exp;
          exp.push_back(s[i]);
          ++i;
          if (i < n && (s[i] == '+' || s[i] == '-')) {
            exp.push_back(s[i]);
            ++i;
          }
          if (i < n && IsDigit(s[i])) {
            while (i < n && IsDigit(s[i])) {
              exp.push_back(s[i]);
              ++i;
            }
            text += exp;
          } else {
            i = mark;  // 'e' starts an identifier, not an exponent
          }
        }
      }
      push(TokenType::kNumber, std::move(text), start);
      continue;
    }
    // Identifier.
    if (IsIdentStart(c)) {
      size_t start = i;
      std::string text;
      while (i < n && IsIdentChar(s[i])) {
        text.push_back(s[i]);
        ++i;
      }
      push(TokenType::kIdentifier, std::move(text), start);
      continue;
    }
    // Operators and punctuation.
    size_t start = i;
    switch (c) {
      case ',': push(TokenType::kComma, ",", start); ++i; break;
      case '(': push(TokenType::kLParen, "(", start); ++i; break;
      case ')': push(TokenType::kRParen, ")", start); ++i; break;
      case '.': push(TokenType::kDot, ".", start); ++i; break;
      case ';': push(TokenType::kSemicolon, ";", start); ++i; break;
      case '*': push(TokenType::kStar, "*", start); ++i; break;
      case '+': push(TokenType::kPlus, "+", start); ++i; break;
      case '-': push(TokenType::kMinus, "-", start); ++i; break;
      case '/': push(TokenType::kSlash, "/", start); ++i; break;
      case '%': push(TokenType::kPercent, "%", start); ++i; break;
      case '=': push(TokenType::kEq, "=", start); ++i; break;
      case '!':
        if (i + 1 < n && s[i + 1] == '=') {
          push(TokenType::kNotEq, "!=", start);
          i += 2;
        } else {
          return Status::ParseError(StrFormat("unexpected '!' at offset %zu", start));
        }
        break;
      case '<':
        if (i + 1 < n && s[i + 1] == '>') {
          push(TokenType::kNotEq, "<>", start);
          i += 2;
        } else if (i + 1 < n && s[i + 1] == '=') {
          push(TokenType::kLessEq, "<=", start);
          i += 2;
        } else {
          push(TokenType::kLess, "<", start);
          ++i;
        }
        break;
      case '>':
        if (i + 1 < n && s[i + 1] == '=') {
          push(TokenType::kGreaterEq, ">=", start);
          i += 2;
        } else {
          push(TokenType::kGreater, ">", start);
          ++i;
        }
        break;
      default:
        return Status::ParseError(
            StrFormat("unexpected character '%c' (0x%02x) at offset %zu", c,
                      static_cast<unsigned char>(c), start));
    }
  }
  tokens.push_back(Token{TokenType::kEnd, "", n});
  return tokens;
}

}  // namespace sqlog::sql
