#ifndef SQLOG_SQL_FINGERPRINT_H_
#define SQLOG_SQL_FINGERPRINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sql/token.h"

namespace sqlog::sql {

/// 128-bit hash of a statement's normalized token stream. Two statements
/// with the same fingerprint almost surely share a normalized key; the
/// parse cache still verifies the key byte-for-byte before treating them
/// as the same template, so collisions cost a comparison, never
/// correctness.
struct TokenFingerprint {
  uint64_t lo = 0;
  uint64_t hi = 0;

  bool operator==(const TokenFingerprint& other) const {
    return lo == other.lo && hi == other.hi;
  }
  bool operator!=(const TokenFingerprint& other) const { return !(*this == other); }
};

/// Appends the normalized key of `tokens` to `key` (the caller clears it
/// when a fresh key is wanted). The key encodes, per token, a type byte
/// followed by a payload:
///   - identifiers and variables: the text case-folded to lower,
///   - strings and non-structural numbers: a fixed placeholder (their
///     text varies per record but not per template),
///   - structural numbers (TOP counts — `TOP 5` / `TOP (5)`): the text
///     verbatim, because the parser folds it into the template,
///   - punctuation/operators: the type byte alone.
/// Payloads are length-delimited so adjacent tokens cannot alias.
///
/// The key is strictly finer than the skeleton template: equal keys
/// imply byte-equal skeletons and per-template facts, while distinct
/// keys may still map to one skeleton (IN-list arity, redundant parens,
/// hex case). The cache only needs the first implication.
void AppendNormalizedKey(const TokenStream& tokens, std::string* key);

/// Hashes a normalized key into a 128-bit fingerprint (block-wise
/// 16-bytes-per-round hash, see simd::HashKey128). In-memory only: the
/// value is never serialized and may change between builds.
TokenFingerprint FingerprintKey(std::string_view key);

/// Indices of the tokens the normalized key placeholders (strings and
/// non-structural numbers), in stream order. Statements with equal keys
/// have the same number of placeholdered tokens at the same structural
/// positions; the parse cache's literal slots are defined over exactly
/// this sequence.
std::vector<size_t> PlaceholderedTokenIndices(const TokenStream& tokens);

}  // namespace sqlog::sql

#endif  // SQLOG_SQL_FINGERPRINT_H_
