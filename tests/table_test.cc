#include "engine/table.h"

#include <gtest/gtest.h>

namespace sqlog::engine {
namespace {

TEST(TableTest, AddColumnsAndRows) {
  MemoryTable table("t");
  ASSERT_TRUE(table.AddColumn("ID", Value::Kind::kInt64).ok());
  ASSERT_TRUE(table.AddColumn("name", Value::Kind::kString).ok());
  ASSERT_TRUE(table.AppendRow({Value::Int(1), Value::Str("x")}).ok());
  ASSERT_TRUE(table.AppendRow({Value::Int(2), Value::Str("y")}).ok());

  EXPECT_EQ(table.row_count(), 2u);
  EXPECT_EQ(table.At(0, 0).AsInt(), 1);
  EXPECT_EQ(table.At(1, 1).AsString(), "y");
}

TEST(TableTest, ColumnIndexCaseInsensitive) {
  MemoryTable table("t");
  ASSERT_TRUE(table.AddColumn("ObjID", Value::Kind::kInt64).ok());
  EXPECT_EQ(table.ColumnIndex("objid"), 0);
  EXPECT_EQ(table.ColumnIndex("OBJID"), 0);
  EXPECT_EQ(table.ColumnIndex("missing"), -1);
}

TEST(TableTest, DuplicateColumnRejected) {
  MemoryTable table("t");
  ASSERT_TRUE(table.AddColumn("a", Value::Kind::kInt64).ok());
  Status s = table.AddColumn("A", Value::Kind::kInt64);
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
}

TEST(TableTest, AddColumnAfterRowsRejected) {
  MemoryTable table("t");
  ASSERT_TRUE(table.AddColumn("a", Value::Kind::kInt64).ok());
  ASSERT_TRUE(table.AppendRow({Value::Int(1)}).ok());
  EXPECT_EQ(table.AddColumn("b", Value::Kind::kInt64).code(),
            StatusCode::kInvalidArgument);
}

TEST(TableTest, WrongArityRowRejected) {
  MemoryTable table("t");
  ASSERT_TRUE(table.AddColumn("a", Value::Kind::kInt64).ok());
  EXPECT_EQ(table.AppendRow({Value::Int(1), Value::Int(2)}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(table.row_count(), 0u);
}

TEST(TableTest, ColumnDataIsColumnar) {
  MemoryTable table("t");
  ASSERT_TRUE(table.AddColumn("a", Value::Kind::kInt64).ok());
  ASSERT_TRUE(table.AddColumn("b", Value::Kind::kInt64).ok());
  ASSERT_TRUE(table.AppendRow({Value::Int(1), Value::Int(10)}).ok());
  ASSERT_TRUE(table.AppendRow({Value::Int(2), Value::Int(20)}).ok());
  const auto& col_b = table.ColumnData(1);
  ASSERT_EQ(col_b.size(), 2u);
  EXPECT_EQ(col_b[0].AsInt(), 10);
  EXPECT_EQ(col_b[1].AsInt(), 20);
}

TEST(ResultSetTest, ToTextRendersHeaderAndRows) {
  ResultSet result;
  result.column_names = {"id", "name"};
  result.rows.push_back({Value::Int(1), Value::Str("x")});
  std::string text = result.ToText();
  EXPECT_NE(text.find("id | name"), std::string::npos);
  EXPECT_NE(text.find("1 | x"), std::string::npos);
}

TEST(ResultSetTest, ToTextTruncatesLongResults) {
  ResultSet result;
  result.column_names = {"n"};
  for (int i = 0; i < 30; ++i) result.rows.push_back({Value::Int(i)});
  std::string text = result.ToText(5);
  EXPECT_NE(text.find("25 more rows"), std::string::npos);
}

}  // namespace
}  // namespace sqlog::engine
