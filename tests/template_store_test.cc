#include "core/template_store.h"

#include <gtest/gtest.h>

namespace sqlog::core {
namespace {

log::LogRecord Make(int64_t t, const char* user, const char* sql) {
  log::LogRecord record;
  record.timestamp_ms = t;
  record.user = user;
  record.statement = sql;
  return record;
}

TEST(TemplateStoreTest, InternReturnsSameIdForEqualTemplates) {
  TemplateStore store;
  auto a = sql::ParseAndAnalyze("SELECT x FROM t WHERE id = 1");
  auto b = sql::ParseAndAnalyze("SELECT x FROM t WHERE id = 999");
  ASSERT_TRUE(a.ok() && b.ok());
  uint64_t id_a = store.Intern(a->tmpl, 0);
  uint64_t id_b = store.Intern(b->tmpl, 1);
  EXPECT_EQ(id_a, id_b);
  EXPECT_EQ(store.size(), 1u);
}

TEST(TemplateStoreTest, DifferentTemplatesGetDifferentIds) {
  TemplateStore store;
  auto a = sql::ParseAndAnalyze("SELECT x FROM t WHERE id = 1");
  auto b = sql::ParseAndAnalyze("SELECT y FROM t WHERE id = 1");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(store.Intern(a->tmpl, 0), store.Intern(b->tmpl, 1));
  EXPECT_EQ(store.size(), 2u);
}

TEST(TemplateStoreTest, RecordUseTracksFrequencyAndUsers) {
  TemplateStore store;
  auto facts = sql::ParseAndAnalyze("SELECT x FROM t WHERE id = 1");
  ASSERT_TRUE(facts.ok());
  uint64_t id = store.Intern(facts->tmpl, 0);
  uint32_t alice = store.InternUser("alice");
  uint32_t bob = store.InternUser("bob");
  store.RecordUse(id, alice);
  store.RecordUse(id, alice);
  store.RecordUse(id, bob);
  EXPECT_EQ(store.Get(id).frequency, 3u);
  EXPECT_EQ(store.Get(id).user_popularity(), 2u);
}

TEST(TemplateStoreTest, EmptyUserIsAnonymousIdZero) {
  TemplateStore store;
  EXPECT_EQ(store.InternUser(""), 0u);
  EXPECT_EQ(store.InternUser("someone"), 1u);
  EXPECT_EQ(store.InternUser("someone"), 1u);
}

TEST(ParseLogTest, ClassifiesAndCounts) {
  TemplateStore store;
  log::QueryLog log;
  log.Append(Make(1000, "u", "SELECT x FROM t WHERE id = 1"));
  log.Append(Make(2000, "u", "INSERT INTO t VALUES (1)"));
  log.Append(Make(3000, "u", "SELECT broken FROM"));
  log.Append(Make(4000, "u", "SELECT x FROM t WHERE id = 2"));
  ParsedLog parsed = ParseLog(log, store);
  EXPECT_EQ(parsed.queries.size(), 2u);
  EXPECT_EQ(parsed.non_select_count, 1u);
  EXPECT_EQ(parsed.syntax_error_count, 1u);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.Get(parsed.queries[0].template_id).frequency, 2u);
}

TEST(ParseLogTest, UserStreamsAreTimeOrdered) {
  TemplateStore store;
  log::QueryLog log;
  log.Append(Make(3000, "a", "SELECT x FROM t WHERE id = 3"));
  log.Append(Make(1000, "a", "SELECT x FROM t WHERE id = 1"));
  log.Append(Make(2000, "b", "SELECT x FROM t WHERE id = 2"));
  ParsedLog parsed = ParseLog(log, store);
  // Streams indexed by interned user id; user "a" interned first.
  uint32_t a_id = 0;
  for (size_t i = 0; i < parsed.user_names.size(); ++i) {
    if (parsed.user_names[i] == "a") a_id = static_cast<uint32_t>(i);
  }
  const auto& stream = parsed.user_streams[a_id];
  ASSERT_EQ(stream.size(), 2u);
  EXPECT_LT(parsed.queries[stream[0]].timestamp_ms, parsed.queries[stream[1]].timestamp_ms);
}

TEST(ParseLogTest, RecordIndexPointsIntoInputLog) {
  TemplateStore store;
  log::QueryLog log;
  log.Append(Make(1000, "u", "CREATE TABLE x (a int)"));
  log.Append(Make(2000, "u", "SELECT x FROM t WHERE id = 1"));
  log.Renumber();
  ParsedLog parsed = ParseLog(log, store);
  ASSERT_EQ(parsed.queries.size(), 1u);
  EXPECT_EQ(parsed.queries[0].record_index, 1u);
}

TEST(ParseLogTest, RowCountIsCarried) {
  TemplateStore store;
  log::QueryLog log;
  log::LogRecord record = Make(1000, "u", "SELECT x FROM t WHERE id = 1");
  record.row_count = 7;
  log.Append(record);
  ParsedLog parsed = ParseLog(log, store);
  ASSERT_EQ(parsed.queries.size(), 1u);
  EXPECT_EQ(parsed.queries[0].row_count, 7);
}

TEST(ParseLogTest, AnonymousLogHasSingleStream) {
  TemplateStore store;
  log::QueryLog log;
  log.Append(Make(1000, "", "SELECT x FROM t WHERE id = 1"));
  log.Append(Make(2000, "", "SELECT y FROM t WHERE id = 2"));
  ParsedLog parsed = ParseLog(log, store);
  ASSERT_EQ(parsed.user_streams.size(), 1u);
  EXPECT_EQ(parsed.user_streams[0].size(), 2u);
}

}  // namespace
}  // namespace sqlog::core
