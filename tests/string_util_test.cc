#include "util/string_util.h"

#include <gtest/gtest.h>

namespace sqlog {
namespace {

TEST(StringUtilTest, ToLowerAsciiOnly) {
  EXPECT_EQ(ToLower("SELECT objID"), "select objid");
  EXPECT_EQ(ToLower(""), "");
  EXPECT_EQ(ToLower("123_x"), "123_x");
}

TEST(StringUtilTest, ToUpper) {
  EXPECT_EQ(ToUpper("select"), "SELECT");
}

TEST(StringUtilTest, TrimRemovesAllWhitespaceKinds) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("\t\r\n x \v\f"), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("a b"), "a b");
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringUtilTest, JoinRoundTripsSplit) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, ","), "x,y,z");
  EXPECT_EQ(Split(Join(parts, ","), ','), parts);
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, StartsWithIgnoreCase) {
  EXPECT_TRUE(StartsWithIgnoreCase("SELECT * FROM t", "select"));
  EXPECT_TRUE(StartsWithIgnoreCase("select", "SELECT"));
  EXPECT_FALSE(StartsWithIgnoreCase("sel", "select"));
  EXPECT_FALSE(StartsWithIgnoreCase("update t", "select"));
}

TEST(StringUtilTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("PhotoPrimary", "photoprimary"));
  EXPECT_FALSE(EqualsIgnoreCase("photo", "photos"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
}

TEST(StringUtilTest, CollapseWhitespace) {
  EXPECT_EQ(CollapseWhitespace("a   b\t\nc"), "a b c");
  EXPECT_EQ(CollapseWhitespace("  leading and trailing  "), "leading and trailing");
  EXPECT_EQ(CollapseWhitespace(""), "");
}

TEST(StringUtilTest, WithThousands) {
  EXPECT_EQ(WithThousands(0), "0");
  EXPECT_EQ(WithThousands(999), "999");
  EXPECT_EQ(WithThousands(1000), "1,000");
  EXPECT_EQ(WithThousands(41998253), "41,998,253");
  EXPECT_EQ(WithThousands(-1234567), "-1,234,567");
}

TEST(StringUtilTest, StrFormatBasics) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringUtilTest, StrFormatLongOutput) {
  std::string long_arg(5000, 'a');
  std::string out = StrFormat("<%s>", long_arg.c_str());
  EXPECT_EQ(out.size(), 5002u);
  EXPECT_EQ(out.front(), '<');
  EXPECT_EQ(out.back(), '>');
}

}  // namespace
}  // namespace sqlog
