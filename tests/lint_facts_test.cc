// Tests for the phase-1 fact extractor (tools/lint/facts): the golden
// dump over the fixture under tests/lint/facts/ pins the extraction
// output shape, and the cache round-trip proves the on-disk format
// loses nothing DumpFacts can see. The masking-lexer cases live in
// lint_test.cc next to the rules they protect.

#include "lint/facts.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace sqlog::lint {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing file " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string FixturePath(const std::string& name) {
  return std::string(SQLOG_LINT_FIXTURE_DIR) + "/facts/" + name;
}

TEST(LintFactsTest, GoldenDumpMatchesFixture) {
  FileFacts facts = ExtractFacts(ReadFile(FixturePath("sample.cc")));
  EXPECT_EQ(DumpFacts("tests/lint/facts/sample.cc", facts),
            ReadFile(FixturePath("sample.facts.golden")));
}

TEST(LintFactsTest, CacheRoundTripPreservesEveryFact) {
  const std::string content = ReadFile(FixturePath("sample.cc"));
  FactDb db;
  db["tests/lint/facts/sample.cc"] = ExtractFacts(content);

  const std::string cache = ::testing::TempDir() + "/facts_roundtrip.cache";
  ASSERT_TRUE(SaveFactCache(cache, db).ok());
  FactDb loaded = LoadFactCache(cache);
  std::remove(cache.c_str());

  ASSERT_EQ(loaded.size(), 1u);
  const auto& [file, facts] = *loaded.begin();
  EXPECT_EQ(facts.content_hash, HashSourceContent(content));
  EXPECT_EQ(DumpFacts(file, facts),
            DumpFacts(file, db["tests/lint/facts/sample.cc"]));
}

TEST(LintFactsTest, ContentHashFoldsInTheFormatVersion) {
  // Same bytes, same hash; different bytes, different hash. The version
  // fold is what invalidates caches across extractor changes.
  EXPECT_EQ(HashSourceContent("int x;"), HashSourceContent("int x;"));
  EXPECT_NE(HashSourceContent("int x;"), HashSourceContent("int y;"));
}

TEST(LintFactsTest, MissingCacheLoadsEmpty) {
  EXPECT_TRUE(LoadFactCache(::testing::TempDir() + "/no_such.cache").empty());
}

TEST(LintFactsTest, CorruptCacheLoadsEmpty) {
  const std::string path = ::testing::TempDir() + "/facts_corrupt.cache";

  // Wrong header version: discarded wholesale.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "sqlog-lint-facts 999\n";
  }
  EXPECT_TRUE(LoadFactCache(path).empty());

  // Good header, malformed record: the cache is an accelerator, never a
  // correctness input, so any parse trouble yields an empty database.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "sqlog-lint-facts 1\nfile a.cc deadbeef\ngarbage record here\n";
  }
  EXPECT_TRUE(LoadFactCache(path).empty());
  std::remove(path.c_str());
}

TEST(LintFactsTest, StaleHashForcesReextraction) {
  // The driver's cache-hit condition compares stored vs current hash;
  // simulate an edit and check the hashes diverge.
  FileFacts before = ExtractFacts("int a = 1;\n");
  EXPECT_NE(before.content_hash, HashSourceContent("int a = 2;\n"));
}

}  // namespace
}  // namespace sqlog::lint
