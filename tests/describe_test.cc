#include "analysis/describe.h"

#include <gtest/gtest.h>

namespace sqlog::analysis {
namespace {

std::string Describe(const std::string& sql) {
  auto facts = sqlog::sql::ParseAndAnalyze(sql);
  EXPECT_TRUE(facts.ok()) << sql;
  return DescribeTemplate(facts.value());
}

TEST(DescribeTest, ConeSearch) {
  EXPECT_EQ(Describe("SELECT p.objID FROM fGetNearbyObjEq(1,2,3) n, photoPrimary p "
                     "WHERE n.objID = p.objID"),
            "gets objects within a radius of an equatorial point (cone search)");
}

TEST(DescribeTest, NearestObject) {
  EXPECT_EQ(Describe("SELECT * FROM dbo.fGetNearestObjEq(145.3, 0.1, 0.1)"),
            "gets the nearest object to an equatorial point");
}

TEST(DescribeTest, RectSearch) {
  EXPECT_EQ(Describe("SELECT objID FROM fGetObjFromRect(1,2,3,4) n"),
            "gets objects inside a rectangular sky region");
}

TEST(DescribeTest, HtmCount) {
  EXPECT_EQ(Describe("SELECT count(*) FROM photoPrimary WHERE htmid >= 1 and htmid <= 2"),
            "counts objects within a range of spherical triangles (HTM search)");
}

TEST(DescribeTest, GenericCount) {
  EXPECT_EQ(Describe("SELECT count(*) FROM specObj WHERE specClass = 3"),
            "counts rows of specobj");
}

TEST(DescribeTest, PointLookupByObjId) {
  EXPECT_EQ(Describe("SELECT rowc_g, colc_g FROM photoPrimary WHERE objID = 5"),
            "fetches attributes of one object by objid (point lookup)");
}

TEST(DescribeTest, MetadataBrowse) {
  EXPECT_EQ(Describe("SELECT description FROM DBObjects WHERE name = 'Galaxy'"),
            "browses schema metadata (DBObjects)");
}

TEST(DescribeTest, GenericEqualityFetch) {
  EXPECT_EQ(Describe("SELECT name FROM Employee WHERE empId = 8"),
            "fetches rows of employee where empid equals a constant");
}

TEST(DescribeTest, WindowScan) {
  EXPECT_EQ(Describe("SELECT objid FROM photoPrimary WHERE ra >= 10 and ra < 10.05"),
            "scans photoprimary over a ra range (window/slice access)");
}

TEST(DescribeTest, MultiColumnRegion) {
  EXPECT_EQ(Describe("SELECT objid FROM photoPrimary WHERE ra > 1 and ra < 2 "
                     "and dec > 3 and dec < 4"),
            "scans photoprimary over a multi-column range (region slice)");
}

TEST(DescribeTest, Join) {
  EXPECT_EQ(Describe("SELECT p.objid FROM photoPrimary p JOIN specObj s "
                     "ON s.bestObjID = p.objID WHERE s.z between 1 and 2 and p.r < 3"),
            "joins photoprimary with specobj");
}

TEST(DescribeTest, NullSearch) {
  EXPECT_EQ(Describe("SELECT * FROM Bugs WHERE assigned_to IS NULL"),
            "searches bugs for missing (NULL) assigned_to values");
}

TEST(DescribeTest, Unfiltered) {
  EXPECT_EQ(Describe("SELECT name FROM DBObjects"),
            "reads dbobjects without a filter");
}

TEST(DescribeTest, FallbackMentionsPredicateCount) {
  EXPECT_EQ(Describe("SELECT a FROM t WHERE x = 1 OR y LIKE 'z%'"),
            "filters t by 2 predicates");
}

}  // namespace
}  // namespace sqlog::analysis
