#include "analysis/sessions.h"

#include <gtest/gtest.h>

#include "log/generator.h"
#include "util/string_util.h"

namespace sqlog::analysis {
namespace {

struct Entry {
  const char* user;
  int64_t time_ms;
  std::string sql;
};

core::ParsedLog BuildParsedLog(const std::vector<Entry>& entries,
                               core::TemplateStore& store) {
  log::QueryLog log;
  for (const auto& entry : entries) {
    log::LogRecord record;
    record.user = entry.user;
    record.timestamp_ms = entry.time_ms;
    record.statement = entry.sql;
    log.Append(record);
  }
  log.Renumber();
  return core::ParseLog(log, store);
}

TEST(SessionsTest, GapSplitsSessions) {
  core::TemplateStore store;
  core::ParsedLog parsed = BuildParsedLog(
      {
          {"u", 0, "SELECT a FROM t WHERE id = 1"},
          {"u", 1000, "SELECT a FROM t WHERE id = 2"},
          {"u", 7200000, "SELECT a FROM t WHERE id = 3"},  // 2h later
      },
      store);
  auto sessions = SegmentSessions(parsed);
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_EQ(sessions[0].size(), 2u);
  EXPECT_EQ(sessions[1].size(), 1u);
  EXPECT_EQ(sessions[0].duration_ms(), 1000);
}

TEST(SessionsTest, UsersSeparateSessions) {
  core::TemplateStore store;
  core::ParsedLog parsed = BuildParsedLog(
      {
          {"a", 0, "SELECT a FROM t WHERE id = 1"},
          {"b", 1000, "SELECT a FROM t WHERE id = 2"},
      },
      store);
  auto sessions = SegmentSessions(parsed);
  EXPECT_EQ(sessions.size(), 2u);
}

TEST(SessionsTest, RobotDetectionRequiresLengthDominanceAndPace) {
  core::TemplateStore store;
  std::vector<Entry> entries;
  // 40 identical-template queries, 2s apart: a robot.
  for (int i = 0; i < 40; ++i) {
    entries.push_back({"bot", i * 2000, StrFormat("SELECT a FROM t WHERE id = %d", i)});
  }
  // 40 queries but from many templates: not a robot.
  for (int i = 0; i < 40; ++i) {
    entries.push_back({"mixy", i * 2000, StrFormat("SELECT c%d FROM t WHERE id = 1", i)});
  }
  // 40 identical-template queries but human pacing (1 min): not a robot.
  for (int i = 0; i < 40; ++i) {
    entries.push_back({"slow", i * 60000, StrFormat("SELECT a FROM t WHERE id = %d", i)});
  }
  core::ParsedLog parsed = BuildParsedLog(entries, store);
  SessionOptions options;
  options.max_gap_ms = 90000;
  auto sessions = SegmentSessions(parsed, options);
  ASSERT_EQ(sessions.size(), 3u);
  size_t robots = 0;
  for (const auto& session : sessions) {
    if (IsRobotSession(session, parsed)) ++robots;
  }
  EXPECT_EQ(robots, 1u);
}

TEST(SessionsTest, ShortSessionIsNeverRobot) {
  core::TemplateStore store;
  core::ParsedLog parsed = BuildParsedLog(
      {
          {"u", 0, "SELECT a FROM t WHERE id = 1"},
          {"u", 1000, "SELECT a FROM t WHERE id = 2"},
      },
      store);
  auto sessions = SegmentSessions(parsed);
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_FALSE(IsRobotSession(sessions[0], parsed));
}

TEST(SessionsTest, TrafficStatsBasics) {
  core::TemplateStore store;
  core::ParsedLog parsed = BuildParsedLog(
      {
          {"a", 0, "SELECT a FROM t WHERE id = 1"},
          {"a", 2000, "SELECT a FROM t WHERE id = 2"},
          {"b", 0, "SELECT a FROM t WHERE id = 3"},
      },
      store);
  auto sessions = SegmentSessions(parsed);
  TrafficStats stats = ComputeTrafficStats(sessions, parsed);
  EXPECT_EQ(stats.session_count, 2u);
  EXPECT_EQ(stats.user_count, 2u);
  EXPECT_DOUBLE_EQ(stats.mean_session_length, 1.5);
  EXPECT_DOUBLE_EQ(stats.mean_gap_s, 2.0);
  EXPECT_EQ(stats.robot_sessions, 0u);
}

TEST(SessionsTest, SyntheticWorkloadContainsRobots) {
  log::GeneratorConfig config;
  config.target_statements = 8000;
  config.cth_families = 8;
  log::QueryLog raw = log::GenerateLog(config);
  core::TemplateStore store;
  core::ParsedLog parsed = core::ParseLog(raw, store);
  auto sessions = SegmentSessions(parsed);
  TrafficStats stats = ComputeTrafficStats(sessions, parsed);
  EXPECT_GT(stats.session_count, 100u);
  EXPECT_GT(stats.robot_sessions, 0u);
  // The SWS + spatial robots carry a large share of the traffic.
  EXPECT_GT(stats.robot_query_share, 0.2);
  EXPECT_LT(stats.robot_query_share, 0.9);
}

TEST(SessionsTest, EmptyLog) {
  core::TemplateStore store;
  core::ParsedLog parsed = BuildParsedLog({}, store);
  auto sessions = SegmentSessions(parsed);
  EXPECT_TRUE(sessions.empty());
  TrafficStats stats = ComputeTrafficStats(sessions, parsed);
  EXPECT_EQ(stats.session_count, 0u);
}

}  // namespace
}  // namespace sqlog::analysis
