#include "core/parse_cache.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/template_store.h"
#include "log/record.h"
#include "sql/fingerprint.h"
#include "util/thread_pool.h"

namespace sqlog::core {
namespace {

log::QueryLog MakeLog(const std::vector<std::string>& statements) {
  log::QueryLog log;
  int64_t clock_ms = 1000000;
  for (size_t i = 0; i < statements.size(); ++i) {
    log::LogRecord record;
    record.seq = i;
    record.user = (i % 2 == 0) ? "alice" : "bob";
    record.timestamp_ms = (clock_ms += 2000);
    record.statement = statements[i];
    log.Append(std::move(record));
  }
  return log;
}

struct ParseRun {
  TemplateStore store;
  ParsedLog parsed;
};

ParseRun Parse(const log::QueryLog& log, const ParseCacheOptions& options,
          size_t max_diagnostics = 8, util::ThreadPool* pool = nullptr) {
  ParseRun run;
  run.parsed = ParseLog(log, run.store, pool, max_diagnostics, options);
  return run;
}

ParseCacheOptions CacheOff() {
  ParseCacheOptions options;
  options.enabled = false;
  return options;
}

/// Asserts the cached run observable-for-observable equal to the
/// uncached reference (everything but facts.ast, which hits drop by
/// design).
void ExpectSameOutput(const ParseRun& want, const ParseRun& got) {
  ASSERT_EQ(want.parsed.queries.size(), got.parsed.queries.size());
  for (size_t i = 0; i < want.parsed.queries.size(); ++i) {
    const ParsedQuery& a = want.parsed.queries[i];
    const ParsedQuery& b = got.parsed.queries[i];
    EXPECT_EQ(a.record_index, b.record_index) << i;
    EXPECT_EQ(a.template_id, b.template_id) << i;
    EXPECT_EQ(a.user_id, b.user_id) << i;
    EXPECT_TRUE(a.facts.tmpl == b.facts.tmpl) << i;
    EXPECT_EQ(a.facts.sc, b.facts.sc) << i;
    EXPECT_EQ(a.facts.fc, b.facts.fc) << i;
    EXPECT_EQ(a.facts.wc, b.facts.wc) << i;
    EXPECT_EQ(a.facts.selects_star, b.facts.selects_star) << i;
    EXPECT_EQ(a.facts.selected_columns, b.facts.selected_columns) << i;
    EXPECT_EQ(a.facts.tables, b.facts.tables) << i;
    EXPECT_EQ(a.facts.table_functions, b.facts.table_functions) << i;
    EXPECT_EQ(a.facts.where_conjunctive, b.facts.where_conjunctive) << i;
    ASSERT_EQ(a.facts.predicates.size(), b.facts.predicates.size()) << i;
    for (size_t p = 0; p < a.facts.predicates.size(); ++p) {
      const sql::Predicate& x = a.facts.predicates[p];
      const sql::Predicate& y = b.facts.predicates[p];
      EXPECT_EQ(x.op, y.op) << i << "/" << p;
      EXPECT_EQ(x.qualifier, y.qualifier) << i << "/" << p;
      EXPECT_EQ(x.column, y.column) << i << "/" << p;
      EXPECT_EQ(x.values, y.values) << i << "/" << p;
      EXPECT_EQ(x.constant_comparison, y.constant_comparison) << i << "/" << p;
      EXPECT_EQ(x.compares_to_null_literal, y.compares_to_null_literal) << i << "/" << p;
    }
  }
  EXPECT_EQ(want.parsed.non_select_count, got.parsed.non_select_count);
  EXPECT_EQ(want.parsed.syntax_error_count, got.parsed.syntax_error_count);
  ASSERT_EQ(want.parsed.diagnostics.size(), got.parsed.diagnostics.size());
  for (size_t i = 0; i < want.parsed.diagnostics.size(); ++i) {
    EXPECT_EQ(want.parsed.diagnostics[i].record_index,
              got.parsed.diagnostics[i].record_index);
    EXPECT_EQ(want.parsed.diagnostics[i].message, got.parsed.diagnostics[i].message);
  }
  EXPECT_EQ(want.parsed.user_streams, got.parsed.user_streams);
  EXPECT_EQ(want.parsed.user_names, got.parsed.user_names);
  ASSERT_EQ(want.store.size(), got.store.size());
  for (size_t id = 0; id < want.store.size(); ++id) {
    const TemplateInfo& a = want.store.Get(id);
    const TemplateInfo& b = got.store.Get(id);
    EXPECT_TRUE(a.tmpl == b.tmpl) << id;
    EXPECT_EQ(a.frequency, b.frequency) << id;
    EXPECT_EQ(a.users, b.users) << id;
    EXPECT_EQ(a.first_query, b.first_query) << id;
  }
}

TEST(ParseCacheTest, RepeatedTemplateHitsAndRendersIdenticalFacts) {
  auto log = MakeLog({
      "SELECT a FROM t WHERE x = 1",
      "select A from T where x = 2",  // same key: identifiers case-fold
      "SELECT a FROM t WHERE x = 3",
  });
  ParseRun reference = Parse(log, CacheOff());
  ParseRun cached = Parse(log, ParseCacheOptions{});
  ExpectSameOutput(reference, cached);

  EXPECT_EQ(cached.parsed.parse_stats.cache_misses, 1u);
  EXPECT_EQ(cached.parsed.parse_stats.cache_hits, 2u);
  EXPECT_EQ(cached.parsed.parse_stats.full_parses, 1u);
  EXPECT_EQ(cached.parsed.parse_stats.parses_avoided(), 2u);
  EXPECT_EQ(cached.parsed.parse_stats.templates_cached, 1u);
  EXPECT_GT(cached.parsed.parse_stats.cache_bytes, 0u);
  // The uncached run parses everything and touches no cache.
  EXPECT_EQ(reference.parsed.parse_stats.full_parses, 3u);
  EXPECT_EQ(reference.parsed.parse_stats.cache_hits, 0u);

  // Hits drop the AST by design; the miss that built the entry keeps it.
  EXPECT_NE(cached.parsed.queries[0].facts.ast, nullptr);
  EXPECT_EQ(cached.parsed.queries[1].facts.ast, nullptr);
  // The rendered facts carry the statement's own literals.
  EXPECT_EQ(cached.parsed.queries[1].facts.wc, "where x = 2");
  ASSERT_EQ(cached.parsed.queries[1].facts.predicates.size(), 1u);
  EXPECT_EQ(cached.parsed.queries[1].facts.predicates[0].values,
            std::vector<std::string>{"2"});
}

TEST(ParseCacheTest, StringEscapesNegativeNumbersAndVariablesRenderExactly) {
  auto log = MakeLog({
      "SELECT a FROM t WHERE s = 'it''s' AND n = -5 AND v = @x",
      "SELECT a FROM t WHERE s = 'plain' AND n = -7.5 AND v = @x",
      "SELECT a FROM t WHERE s = '' AND n = -12 AND v = @x",
  });
  ParseRun reference = Parse(log, CacheOff());
  ParseRun cached = Parse(log, ParseCacheOptions{});
  ExpectSameOutput(reference, cached);
  EXPECT_EQ(cached.parsed.parse_stats.cache_hits, 2u);
  // Quote doubling must survive the round trip through the recipe.
  EXPECT_NE(cached.parsed.queries[0].facts.wc.find("'it''s'"), std::string::npos);
}

TEST(ParseCacheTest, TopCountIsStructuralAndSplitsTemplates) {
  auto log = MakeLog({
      "SELECT TOP 5 a FROM t WHERE x = 1",
      "SELECT TOP 7 a FROM t WHERE x = 1",  // different TOP ⇒ different key
      "SELECT TOP 5 a FROM t WHERE x = 9",  // same TOP ⇒ hit
  });
  ParseRun reference = Parse(log, CacheOff());
  ParseRun cached = Parse(log, ParseCacheOptions{});
  ExpectSameOutput(reference, cached);
  EXPECT_EQ(cached.parsed.parse_stats.cache_misses, 2u);
  EXPECT_EQ(cached.parsed.parse_stats.cache_hits, 1u);
  EXPECT_NE(cached.parsed.queries[0].template_id, cached.parsed.queries[1].template_id);
  EXPECT_EQ(cached.parsed.queries[0].template_id, cached.parsed.queries[2].template_id);
}

TEST(ParseCacheTest, ForcedCollisionFallsBackToFullKeyComparison) {
  // Distinct templates that all hash to the same constant fingerprint
  // must still be told apart — Find compares the full normalized key.
  auto log = MakeLog({
      "SELECT a FROM t WHERE x = 1",
      "SELECT b FROM u WHERE y = 2",
      "SELECT a FROM t WHERE x = 3",
      "SELECT b FROM u WHERE y = 4",
      "SELECT c, d FROM v",
  });
  ParseRun reference = Parse(log, CacheOff());
  ParseCacheOptions collide;
  collide.fingerprint_for_test = [](std::string_view) {
    return sql::TokenFingerprint{0x1234, 0x5678};
  };
  ParseRun collided = Parse(log, collide);
  ExpectSameOutput(reference, collided);
  // Three distinct keys live side by side in the one bucket; the two
  // repeats still hit their own entries.
  EXPECT_EQ(collided.parsed.parse_stats.templates_cached, 3u);
  EXPECT_EQ(collided.parsed.parse_stats.cache_misses, 3u);
  EXPECT_EQ(collided.parsed.parse_stats.cache_hits, 2u);
}

TEST(ParseCacheTest, LiteralSubjectCaseIsUncacheableButCorrect) {
  // Simple-form CASE with a literal subject: normalization to searched
  // form clones the subject into every branch, so the printed clause has
  // more literal slots than the source has literal tokens — recipe
  // validation rejects the entry and every repeat takes the full parser.
  const std::string simple_case =
      "SELECT CASE 3 WHEN 1 THEN 'a' WHEN 2 THEN 'b' END FROM t";
  auto log = MakeLog({simple_case, simple_case, simple_case});
  ParseRun reference = Parse(log, CacheOff());
  ASSERT_EQ(reference.parsed.queries.size(), 3u) << "simple CASE must parse";
  ParseRun cached = Parse(log, ParseCacheOptions{});
  ExpectSameOutput(reference, cached);
  EXPECT_EQ(cached.parsed.parse_stats.uncacheable_hits, 2u);
  EXPECT_EQ(cached.parsed.parse_stats.cache_hits, 0u);
  EXPECT_EQ(cached.parsed.parse_stats.full_parses, 3u);
}

TEST(ParseCacheTest, ParseFailuresAreCachedWithoutLosingDiagnostics) {
  auto log = MakeLog({
      "SELECT FROM WHERE",
      "SELECT FROM WHERE",
      "SELECT FROM WHERE",
  });
  // Diagnostics requested: every failure hit re-parses for its message,
  // so the messages are byte-identical to the uncached run.
  ParseRun reference = Parse(log, CacheOff(), /*max_diagnostics=*/8);
  ParseRun cached = Parse(log, ParseCacheOptions{}, /*max_diagnostics=*/8);
  ExpectSameOutput(reference, cached);
  EXPECT_EQ(cached.parsed.syntax_error_count, 3u);
  EXPECT_EQ(cached.parsed.diagnostics.size(), 3u);

  // No diagnostics requested: repeats short-circuit on the cached
  // failure entry and skip the parser entirely.
  ParseRun quiet = Parse(log, ParseCacheOptions{}, /*max_diagnostics=*/0);
  EXPECT_EQ(quiet.parsed.syntax_error_count, 3u);
  EXPECT_EQ(quiet.parsed.parse_stats.failure_hits, 2u);
  EXPECT_EQ(quiet.parsed.parse_stats.full_parses, 1u);
}

TEST(ParseCacheTest, ShardedParseMatchesSerialWithCacheOn) {
  std::vector<std::string> statements;
  for (int i = 0; i < 200; ++i) {
    statements.push_back("SELECT a FROM t WHERE x = " + std::to_string(i % 7));
    statements.push_back("SELECT b, c FROM u WHERE y LIKE 'p" + std::to_string(i % 3) +
                         "%'");
  }
  auto log = MakeLog(statements);
  ParseRun reference = Parse(log, CacheOff());
  util::ThreadPool pool(8);
  ParseRun sharded = Parse(log, ParseCacheOptions{}, /*max_diagnostics=*/8, &pool);
  ExpectSameOutput(reference, sharded);
  EXPECT_GT(sharded.parsed.parse_stats.cache_hits, 0u);
}

TEST(ParseCacheTest, StreamingParserKeepsItsCacheAcrossBatches) {
  std::vector<std::string> statements;
  for (int i = 0; i < 40; ++i) {
    statements.push_back("SELECT a FROM t WHERE x = " + std::to_string(i));
  }
  auto log = MakeLog(statements);

  ParseRun reference = Parse(log, CacheOff());

  TemplateStore store;
  StreamingParser parser(store, /*max_diagnostics=*/8, nullptr, ParseCacheOptions{});
  std::vector<log::LogRecord> batch;
  for (size_t i = 0; i < log.size(); ++i) {
    batch.push_back(log.records()[i]);
    if (batch.size() == 10) {
      parser.FeedBatch(batch);
      batch.clear();
    }
  }
  if (!batch.empty()) parser.FeedBatch(batch);
  ParseRun streamed;
  streamed.parsed = parser.Finish();

  // One miss in the first batch; every later batch hits the persistent
  // cache (the template survives batch boundaries).
  EXPECT_EQ(streamed.parsed.parse_stats.cache_misses, 1u);
  EXPECT_EQ(streamed.parsed.parse_stats.cache_hits, 39u);
  EXPECT_EQ(streamed.parsed.parse_stats.templates_cached, 1u);

  // The streaming path drops ASTs wholesale, so compare the rest against
  // the in-memory reference through the store.
  ASSERT_EQ(streamed.parsed.queries.size(), reference.parsed.queries.size());
  for (size_t i = 0; i < reference.parsed.queries.size(); ++i) {
    EXPECT_EQ(streamed.parsed.queries[i].template_id,
              reference.parsed.queries[i].template_id);
    EXPECT_EQ(streamed.parsed.queries[i].facts.wc, reference.parsed.queries[i].facts.wc);
  }
  ASSERT_EQ(store.size(), reference.store.size());
  for (size_t id = 0; id < store.size(); ++id) {
    EXPECT_TRUE(store.Get(id).tmpl == reference.store.Get(id).tmpl);
    EXPECT_EQ(store.Get(id).frequency, reference.store.Get(id).frequency);
  }
}

TEST(ParseCacheEntryTest, BytesAccountsForKeyAndRecipes) {
  ParseCacheEntry entry;
  size_t empty_bytes = entry.bytes();
  entry.key = std::string(100, 'k');
  entry.sc.pieces.push_back(std::string(50, 'p'));
  EXPECT_GE(entry.bytes(), empty_bytes + 150);
}

}  // namespace
}  // namespace sqlog::core
