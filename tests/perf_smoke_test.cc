// Perf smoke test (ctest label "perf"): a fixed-seed generator log
// pushed through the full pipeline with the parse cache on and off must
// produce byte-identical outputs, while the cached run demonstrably
// parses fewer statements (the whole point of the fingerprint cache).
// This pins the perf mechanism without timing anything — wall-clock
// assertions are flaky under CI load; the full-parse counter is not.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "catalog/schema.h"
#include "core/parse_cache.h"
#include "core/pipeline.h"
#include "log/generator.h"
#include "log/log_io.h"

namespace sqlog {
namespace {

log::QueryLog FixedLog() {
  log::GeneratorConfig config;
  config.seed = 63099001;
  config.target_statements = 20000;
  config.human_users = 60;
  return log::GenerateLog(config);
}

core::PipelineResult RunWithCache(const log::QueryLog& raw, const catalog::Schema& schema,
                                  bool parse_cache) {
  auto pipeline = core::PipelineBuilder()
                      .WithSchema(&schema)
                      .NumThreads(4)
                      .ParseCache(parse_cache)
                      .Build();
  EXPECT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  auto result = pipeline->Run(raw);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result.value());
}

void ExpectSameLog(const log::QueryLog& want, const log::QueryLog& got,
                   const char* label) {
  ASSERT_EQ(want.size(), got.size()) << label;
  for (size_t i = 0; i < want.size(); ++i) {
    const auto& a = want.records()[i];
    const auto& b = got.records()[i];
    ASSERT_EQ(a.statement, b.statement) << label << " record " << i;
    ASSERT_EQ(a.user, b.user) << label << " record " << i;
    ASSERT_EQ(a.timestamp_ms, b.timestamp_ms) << label << " record " << i;
  }
}

TEST(PerfSmokeTest, CachedPipelineMatchesUncachedWithStrictlyFewerFullParses) {
  const log::QueryLog raw = FixedLog();
  const catalog::Schema schema = catalog::MakeSkyServerSchema();

  core::PipelineResult uncached = RunWithCache(raw, schema, /*parse_cache=*/false);
  core::PipelineResult cached = RunWithCache(raw, schema, /*parse_cache=*/true);

  // Identical observable output...
  EXPECT_EQ(cached.stats.ToTable(), uncached.stats.ToTable());
  ExpectSameLog(uncached.clean_log, cached.clean_log, "clean");
  ExpectSameLog(uncached.removal_log, cached.removal_log, "removal");

  // ...for strictly less parsing work. The uncached run parses every
  // SELECT; the cached run only lexes + fingerprints the repeats.
  const core::ParseStats& with = cached.parsed.parse_stats;
  const core::ParseStats& without = uncached.parsed.parse_stats;
  EXPECT_LT(with.full_parses, without.full_parses);
  EXPECT_GT(with.parses_avoided(), 0u);
  EXPECT_EQ(without.parses_avoided(), 0u);
  // Template-heavy workload: most statements must ride the cache.
  EXPECT_GT(with.parses_avoided(), cached.parsed.queries.size() / 2);
  EXPECT_GT(with.templates_cached, 0u);
}

TEST(PerfSmokeTest, SqbIngestDoesZeroFullParses) {
  // The binary format's whole point: the template dictionary ships
  // validated parse recipes, so re-ingesting a `.sqb` file seeds the
  // cache up front and never runs the parser — full_parses stays at
  // exactly zero. Diagnostics are capped at 0 so the handful of
  // syntax-error statements short-circuit on their (failed) recipes too.
  const log::QueryLog raw = FixedLog();
  const catalog::Schema schema = catalog::MakeSkyServerSchema();
  const std::string sqb_path = ::testing::TempDir() + "/perf_smoke.sqb";
  ASSERT_TRUE(log::LogIo::WriteFile(raw, sqb_path, log::LogFormat::kSqb,
                                    core::BuildStatementRecipe)
                  .ok());

  auto pipeline = core::PipelineBuilder()
                      .WithSchema(&schema)
                      .Streaming(true)
                      .MaxParseDiagnostics(0)
                      .Build();
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  const std::string clean_path = ::testing::TempDir() + "/perf_smoke_clean.csv";
  const std::string removal_path = ::testing::TempDir() + "/perf_smoke_removal.csv";
  auto run = pipeline->RunStreaming(sqb_path, clean_path, removal_path);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  const core::ParseStats& stats = run->parsed.parse_stats;
  EXPECT_EQ(stats.full_parses, 0u);
  EXPECT_GT(stats.parses_avoided(), 0u);
  // And the run actually processed the workload, not a degenerate log.
  EXPECT_GT(run->parsed.queries.size(), 10000u);

  std::remove(sqb_path.c_str());
  std::remove(clean_path.c_str());
  std::remove(removal_path.c_str());
}

}  // namespace
}  // namespace sqlog
