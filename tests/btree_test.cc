#include "engine/btree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/random.h"

namespace sqlog::engine {
namespace {

class BTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(file_.Open("").ok());
    pool_ = std::make_unique<BufferPool>(&file_, 512);
  }

  std::vector<std::pair<int64_t, uint64_t>> Entries(const BTreeIndex& index) {
    std::vector<std::pair<int64_t, uint64_t>> out;
    EXPECT_TRUE(index.ForEach([&](int64_t key, uint64_t row) {
      out.emplace_back(key, row);
    }).ok());
    return out;
  }

  PageFile file_;
  std::unique_ptr<BufferPool> pool_;
};

TEST_F(BTreeTest, EmptyIndexLookupsFindNothing) {
  BTreeIndex index(pool_.get());
  std::vector<uint64_t> rows;
  ASSERT_TRUE(index.Lookup(42, &rows).ok());
  EXPECT_TRUE(rows.empty());
  EXPECT_EQ(index.size(), 0u);
  EXPECT_EQ(index.height(), 0u);
  EXPECT_TRUE(Entries(index).empty());
}

TEST_F(BTreeTest, RandomInsertMatchesBulkLoadIteration) {
  // The property the docs promise: both build paths produce the same
  // key-ordered iteration, at a scale that forces leaf and internal
  // splits (511 entries/leaf, 682 children/internal node).
  constexpr size_t kKeys = 300000;
  std::vector<std::pair<int64_t, uint64_t>> pairs;
  pairs.reserve(kKeys);
  Rng rng(7);
  for (size_t i = 0; i < kKeys; ++i) {
    pairs.emplace_back(static_cast<int64_t>(rng.Uniform(1u << 30)),
                       static_cast<uint64_t>(i));
  }

  BTreeIndex inserted(pool_.get());
  for (const auto& [key, row] : pairs) {
    ASSERT_TRUE(inserted.Insert(key, row).ok());
  }

  // Bulk load wants sorted input; stable sort preserves insertion order
  // among duplicate keys, which is also the order Insert() produces.
  std::stable_sort(pairs.begin(), pairs.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  BTreeIndex bulk(pool_.get());
  ASSERT_TRUE(bulk.StartBulk().ok());
  for (const auto& [key, row] : pairs) {
    ASSERT_TRUE(bulk.BulkAdd(key, row).ok());
  }
  ASSERT_TRUE(bulk.FinishBulk().ok());

  EXPECT_EQ(inserted.size(), kKeys);
  EXPECT_EQ(bulk.size(), kKeys);
  EXPECT_GE(inserted.height(), 3u) << "scale too small to split internal nodes";
  EXPECT_EQ(Entries(inserted), Entries(bulk));
}

TEST_F(BTreeTest, DuplicateKeysComeBackInInsertionOrder) {
  BTreeIndex index(pool_.get());
  // Enough duplicates of one key to span several leaves, interleaved
  // with neighbours so the duplicate run crosses node boundaries.
  constexpr int64_t kDup = 5000;
  constexpr uint64_t kCopies = 2000;
  for (uint64_t i = 0; i < kCopies; ++i) {
    ASSERT_TRUE(index.Insert(kDup, i).ok());
    ASSERT_TRUE(index.Insert(kDup - 1 - static_cast<int64_t>(i), 100000 + i).ok());
    ASSERT_TRUE(index.Insert(kDup + 1 + static_cast<int64_t>(i), 200000 + i).ok());
  }
  std::vector<uint64_t> rows;
  ASSERT_TRUE(index.Lookup(kDup, &rows).ok());
  ASSERT_EQ(rows.size(), kCopies);
  for (uint64_t i = 0; i < kCopies; ++i) {
    ASSERT_EQ(rows[i], i) << "insertion order lost at duplicate " << i;
  }
  // Neighbours are untouched.
  rows.clear();
  ASSERT_TRUE(index.Lookup(kDup - 1, &rows).ok());
  EXPECT_EQ(rows, std::vector<uint64_t>{100000});
}

TEST_F(BTreeTest, BulkLoadRejectsUnsortedAndNonEmpty) {
  BTreeIndex index(pool_.get());
  ASSERT_TRUE(index.StartBulk().ok());
  ASSERT_TRUE(index.BulkAdd(10, 0).ok());
  EXPECT_FALSE(index.BulkAdd(9, 1).ok());
  ASSERT_TRUE(index.BulkAdd(10, 2).ok());  // equal keys are fine
  ASSERT_TRUE(index.FinishBulk().ok());
  EXPECT_FALSE(index.StartBulk().ok()) << "bulk load into a non-empty index";
}

TEST_F(BTreeTest, LookupManyMatchesIndividualLookups) {
  BTreeIndex index(pool_.get());
  ASSERT_TRUE(index.StartBulk().ok());
  for (int64_t k = 0; k < 50000; k += 3) {
    ASSERT_TRUE(index.BulkAdd(k, static_cast<uint64_t>(k) * 7).ok());
  }
  ASSERT_TRUE(index.FinishBulk().ok());

  std::vector<int64_t> probes = {0, 3, 4, 2999, 3000, 49998, 49999, 123456};
  std::sort(probes.begin(), probes.end());
  std::vector<uint64_t> batched;
  ASSERT_TRUE(index.LookupMany(probes, &batched).ok());

  std::vector<uint64_t> individual;
  for (int64_t k : probes) {
    ASSERT_TRUE(index.Lookup(k, &individual).ok());
  }
  std::sort(batched.begin(), batched.end());
  std::sort(individual.begin(), individual.end());
  EXPECT_EQ(batched, individual);
  EXPECT_EQ(batched.size(), 4u);  // hits: 0, 3, 3000, 49998
}

TEST_F(BTreeTest, SurvivesPoolSmallerThanTree) {
  // A 16-page pool (128 KiB) holding an index of 200k entries (~400
  // leaves): every descent faults pages in and out through eviction.
  PageFile file;
  ASSERT_TRUE(file.Open("").ok());
  BufferPool tiny(&file, 16);
  BTreeIndex index(&tiny);
  constexpr int64_t kKeys = 200000;
  ASSERT_TRUE(index.StartBulk().ok());
  for (int64_t k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(index.BulkAdd(k, static_cast<uint64_t>(k)).ok());
  }
  ASSERT_TRUE(index.FinishBulk().ok());
  std::vector<uint64_t> rows;
  for (int64_t k : {int64_t{0}, kKeys / 2, kKeys - 1}) {
    rows.clear();
    ASSERT_TRUE(index.Lookup(k, &rows).ok());
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0], static_cast<uint64_t>(k));
  }
  EXPECT_GT(tiny.stats().evictions, 0u);
}

}  // namespace
}  // namespace sqlog::engine
