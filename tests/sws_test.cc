#include "core/sws.h"

#include <gtest/gtest.h>

namespace sqlog::core {
namespace {

Pattern MakePattern(std::vector<uint64_t> ids, uint64_t frequency, size_t users) {
  Pattern pattern;
  pattern.template_ids = std::move(ids);
  pattern.frequency = frequency;
  for (size_t u = 0; u < users; ++u) pattern.users.insert(static_cast<uint32_t>(u + 1));
  return pattern;
}

TEST(SwsTest, FrequentSingleUserPatternIsSws) {
  std::vector<Pattern> patterns;
  patterns.push_back(MakePattern({1}, 5000, 1));
  SwsOptions options;
  options.frequency_fraction = 0.01;
  options.max_user_popularity = 1;
  SwsReport report = DetectSws(patterns, 100000, options);
  ASSERT_EQ(report.patterns.size(), 1u);
  EXPECT_EQ(report.covered_queries, 5000u);
  EXPECT_DOUBLE_EQ(report.coverage, 0.05);
}

TEST(SwsTest, PopularPatternIsNotSws) {
  std::vector<Pattern> patterns;
  patterns.push_back(MakePattern({1}, 5000, 40));
  SwsOptions options;
  options.max_user_popularity = 2;
  SwsReport report = DetectSws(patterns, 100000, options);
  EXPECT_TRUE(report.patterns.empty());
  EXPECT_EQ(report.coverage, 0.0);
}

TEST(SwsTest, InfrequentPatternIsNotSws) {
  std::vector<Pattern> patterns;
  patterns.push_back(MakePattern({1}, 5, 1));
  SwsOptions options;
  options.frequency_fraction = 0.01;
  SwsReport report = DetectSws(patterns, 100000, options);
  EXPECT_TRUE(report.patterns.empty());
}

TEST(SwsTest, LongerPatternsDoNotDoubleCount) {
  std::vector<Pattern> patterns;
  patterns.push_back(MakePattern({1}, 5000, 1));
  patterns.push_back(MakePattern({1, 2}, 2500, 1));
  SwsOptions options;
  options.frequency_fraction = 0.001;
  SwsReport report = DetectSws(patterns, 100000, options);
  ASSERT_EQ(report.patterns.size(), 1u);
  EXPECT_EQ(report.patterns[0].pattern_index, 0u);
}

TEST(SwsTest, CoverageGridIsMonotone) {
  // Table 8's shape: coverage grows with userPopularity and with a
  // looser frequency threshold.
  std::vector<Pattern> patterns;
  patterns.push_back(MakePattern({1}, 9000, 1));
  patterns.push_back(MakePattern({2}, 4000, 2));
  patterns.push_back(MakePattern({3}, 900, 4));
  patterns.push_back(MakePattern({4}, 80, 8));
  const size_t total = 100000;

  double previous_row = -1.0;
  for (size_t user_pop : {1u, 2u, 4u, 8u, 16u}) {
    double previous_cell = -1.0;
    double row_at_tightest = 0.0;
    for (double freq : {0.1, 0.01, 0.001, 0.0001}) {
      SwsOptions options;
      options.frequency_fraction = freq;
      options.max_user_popularity = user_pop;
      double coverage = DetectSws(patterns, total, options).coverage;
      EXPECT_GE(coverage, previous_cell);  // looser frequency ⇒ ≥ coverage
      previous_cell = coverage;
      if (freq == 0.1) row_at_tightest = coverage;
    }
    EXPECT_GE(row_at_tightest, previous_row);  // looser popularity ⇒ ≥
    previous_row = row_at_tightest;
  }
}

TEST(SwsTest, EmptyInputsAreSafe) {
  SwsReport report = DetectSws({}, 0, SwsOptions{});
  EXPECT_TRUE(report.patterns.empty());
  EXPECT_EQ(report.coverage, 0.0);
}

}  // namespace
}  // namespace sqlog::core
