#include "util/random.h"

#include <gtest/gtest.h>

#include <vector>

namespace sqlog {
namespace {

TEST(RandomTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RandomTest, ZeroSeedIsUsable) {
  Rng rng(0);
  EXPECT_NE(rng.Next(), rng.Next());
}

TEST(RandomTest, UniformStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
  }
}

TEST(RandomTest, UniformRangeInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    if (v == -3) saw_lo = true;
    if (v == 3) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  // Mean of U[0,1) ≈ 0.5.
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RandomTest, ChanceRespectsProbability) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Chance(0.25)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(RandomTest, ZipfStaysInBoundsAndIsSkewed) {
  Rng rng(17);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) {
    uint64_t v = rng.Zipf(100, 1.2);
    ASSERT_LT(v, 100u);
    ++counts[v];
  }
  // Rank 0 must dominate deep ranks by a wide margin.
  EXPECT_GT(counts[0], counts[50] * 5);
  EXPECT_GT(counts[0], 1000);
}

TEST(RandomTest, ZipfSingleElement) {
  Rng rng(19);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.Zipf(1, 1.5), 0u);
  }
}

}  // namespace
}  // namespace sqlog
