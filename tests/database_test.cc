#include "engine/database.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace sqlog::engine {
namespace {

TEST(DatabaseTest, CreateAndFindCaseInsensitive) {
  Database db;
  auto table = db.CreateTable("PhotoPrimary", {{"objid", Value::Kind::kInt64}});
  ASSERT_TRUE(table.ok());
  EXPECT_NE(db.FindTable("photoprimary"), nullptr);
  EXPECT_NE(db.FindTable("PHOTOPRIMARY"), nullptr);
  EXPECT_EQ(db.FindTable("other"), nullptr);
}

TEST(DatabaseTest, DuplicateTableRejected) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", {{"a", Value::Kind::kInt64}}).ok());
  auto dup = db.CreateTable("T", {{"a", Value::Kind::kInt64}});
  EXPECT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
}

TEST(DatabaseTest, CreateFromCatalogMapsTypes) {
  Database db;
  catalog::Schema schema = catalog::MakeSkyServerSchema();
  auto table = db.CreateTableFromCatalog(*schema.FindTable("photoprimary"));
  ASSERT_TRUE(table.ok());
  int objid = table.value()->ColumnIndex("objid");
  ASSERT_GE(objid, 0);
  EXPECT_EQ(table.value()->columns()[static_cast<size_t>(objid)].kind,
            Value::Kind::kInt64);
  int ra = table.value()->ColumnIndex("ra");
  EXPECT_EQ(table.value()->columns()[static_cast<size_t>(ra)].kind, Value::Kind::kDouble);
}

TEST(DatabaseTest, PopulateSkyServerSampleShape) {
  Database db;
  ASSERT_TRUE(PopulateSkyServerSample(db, 100).ok());
  const Table* photo = db.FindTable("photoprimary");
  ASSERT_NE(photo, nullptr);
  EXPECT_EQ(photo->row_count(), 100u);
  const Table* all = db.FindTable("photoobjall");
  ASSERT_NE(all, nullptr);
  EXPECT_EQ(all->row_count(), 100u);
  const Table* spec = db.FindTable("specobjall");
  ASSERT_NE(spec, nullptr);
  EXPECT_EQ(spec->row_count(), 25u);  // every 4th object has a spectrum
  EXPECT_NE(db.FindTable("dbobjects"), nullptr);
  EXPECT_NE(db.FindTable("employees"), nullptr);
  EXPECT_NE(db.FindTable("orders"), nullptr);
  EXPECT_NE(db.FindTable("bugs"), nullptr);
}

TEST(DatabaseTest, PhotoPrimaryAndPhotoObjAllShareObjIds) {
  Database db;
  ASSERT_TRUE(PopulateSkyServerSample(db, 50).ok());
  const Table* photo = db.FindTable("photoprimary");
  const Table* all = db.FindTable("photoobjall");
  int col_a = photo->ColumnIndex("objid");
  int col_b = all->ColumnIndex("objid");
  std::unordered_set<int64_t> a_ids;
  for (size_t r = 0; r < photo->row_count(); ++r) {
    a_ids.insert(photo->CellAt(r, static_cast<size_t>(col_a)).AsInt());
  }
  for (size_t r = 0; r < all->row_count(); ++r) {
    EXPECT_EQ(a_ids.count(all->CellAt(r, static_cast<size_t>(col_b)).AsInt()), 1u);
  }
}

TEST(DatabaseTest, PhotoObjIdsHelper) {
  Database db;
  ASSERT_TRUE(PopulateSkyServerSample(db, 20).ok());
  auto ids = PhotoObjIds(db);
  EXPECT_EQ(ids.size(), 20u);
  std::unordered_set<int64_t> distinct(ids.begin(), ids.end());
  EXPECT_EQ(distinct.size(), 20u);
}

TEST(DatabaseTest, BugsTableHasNullAssignees) {
  // The SNC demo needs NULL values to search for.
  Database db;
  ASSERT_TRUE(PopulateSkyServerSample(db, 10).ok());
  const Table* bugs = db.FindTable("bugs");
  int col = bugs->ColumnIndex("assigned_to");
  size_t nulls = 0;
  for (size_t r = 0; r < bugs->row_count(); ++r) {
    if (bugs->CellAt(r, static_cast<size_t>(col)).is_null()) ++nulls;
  }
  EXPECT_GT(nulls, 0u);
  EXPECT_LT(nulls, bugs->row_count());
}

TEST(DatabaseTest, PopulateIsDeterministic) {
  Database a;
  Database b;
  ASSERT_TRUE(PopulateSkyServerSample(a, 30, 7).ok());
  ASSERT_TRUE(PopulateSkyServerSample(b, 30, 7).ok());
  const Table* ta = a.FindTable("photoprimary");
  const Table* tb = b.FindTable("photoprimary");
  for (size_t r = 0; r < ta->row_count(); ++r) {
    for (size_t c = 0; c < ta->columns().size(); ++c) {
      EXPECT_EQ(ta->CellAt(r, c).ToString(), tb->CellAt(r, c).ToString());
    }
  }
}

}  // namespace
}  // namespace sqlog::engine
