#include "log/log_io.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace sqlog::log {
namespace {

QueryLog SampleLog() {
  QueryLog log;
  LogRecord a;
  a.seq = 0;
  a.timestamp_ms = 1041379200000;
  a.user = "192.168.0.1";
  a.session = "192.168.0.1#1";
  a.statement = "SELECT a, b FROM t WHERE s = 'x,\"y\"'";
  a.row_count = 12;
  a.truth = TruthLabel::kOrganic;
  log.Append(a);

  LogRecord b;
  b.seq = 1;
  b.timestamp_ms = 1041379201000;
  b.user = "";
  b.session = "";
  b.statement = "SELECT *\nFROM multi\nWHERE line = 1";
  b.row_count = -1;
  b.truth = TruthLabel::kDwStifle;
  log.Append(b);
  return log;
}

TEST(LogIoTest, CsvRoundTrip) {
  QueryLog original = SampleLog();
  std::string csv = LogIo::ToCsv(original);
  auto loaded = LogIo::FromCsv(csv);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    const LogRecord& want = original.records()[i];
    const LogRecord& got = loaded->records()[i];
    EXPECT_EQ(got.seq, want.seq);
    EXPECT_EQ(got.timestamp_ms, want.timestamp_ms);
    EXPECT_EQ(got.user, want.user);
    EXPECT_EQ(got.session, want.session);
    EXPECT_EQ(got.statement, want.statement);
    EXPECT_EQ(got.row_count, want.row_count);
    EXPECT_EQ(got.truth, want.truth);
  }
}

TEST(LogIoTest, CsvHasHeader) {
  std::string csv = LogIo::ToCsv(SampleLog());
  EXPECT_EQ(csv.rfind("seq,timestamp_ms,user,session,row_count,truth,statement\n", 0), 0u);
}

TEST(LogIoTest, FromCsvSkipsBlankLines) {
  auto loaded = LogIo::FromCsv(
      "seq,timestamp_ms,user,session,row_count,truth,statement\n"
      "\n"
      "0,100,u,s,1,organic,SELECT 1\n"
      "\n");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 1u);
}

TEST(LogIoTest, FromCsvWithoutHeader) {
  auto loaded = LogIo::FromCsv("0,100,u,s,1,organic,SELECT 1\n");
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 1u);
  EXPECT_EQ(loaded->records()[0].statement, "SELECT 1");
}

TEST(LogIoTest, WrongFieldCountIsError) {
  auto loaded = LogIo::FromCsv("0,100,u\n");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
}

TEST(LogIoTest, NonNumericSeqIsParseErrorNotZero) {
  // Regression: unchecked strtoull used to read "abc" as seq 0.
  auto loaded = LogIo::FromCsv("abc,100,u,s,1,organic,SELECT 1\n");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
  EXPECT_NE(loaded.status().message().find("seq"), std::string::npos)
      << loaded.status().message();
  EXPECT_NE(loaded.status().message().find("line 1"), std::string::npos)
      << loaded.status().message();
}

TEST(LogIoTest, TrailingGarbageInTimestampIsParseError) {
  auto loaded = LogIo::FromCsv(
      "seq,timestamp_ms,user,session,row_count,truth,statement\n"
      "0,100,u,s,1,organic,SELECT 1\n"
      "1,200x,u,s,1,organic,SELECT 2\n");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
  EXPECT_NE(loaded.status().message().find("timestamp_ms"), std::string::npos);
  EXPECT_NE(loaded.status().message().find("line 3"), std::string::npos)
      << loaded.status().message();
}

TEST(LogIoTest, OverflowingRowCountIsParseError) {
  auto loaded =
      LogIo::FromCsv("0,100,u,s,123456789012345678901234567890,organic,SELECT 1\n");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
  EXPECT_NE(loaded.status().message().find("row_count"), std::string::npos);
  EXPECT_NE(loaded.status().message().find("out of range"), std::string::npos)
      << loaded.status().message();
}

TEST(LogIoTest, StrayHeaderMidFileIsParseError) {
  // A second header means concatenated or corrupted input; it used to be
  // swallowed as a data row (strtoull("seq") == 0).
  auto loaded = LogIo::FromCsv(
      "seq,timestamp_ms,user,session,row_count,truth,statement\n"
      "0,100,u,s,1,organic,SELECT 1\n"
      "seq,timestamp_ms,user,session,row_count,truth,statement\n"
      "1,200,u,s,1,organic,SELECT 2\n");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
  EXPECT_NE(loaded.status().message().find("stray header"), std::string::npos)
      << loaded.status().message();
}

TEST(LogIoTest, StatementWithCommasSurvives) {
  QueryLog log;
  LogRecord record;
  record.statement = "SELECT a, b, c FROM t WHERE id IN (1, 2, 3)";
  log.Append(record);
  auto loaded = LogIo::FromCsv(LogIo::ToCsv(log));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->records()[0].statement, record.statement);
}

TEST(LogIoTest, FileRoundTrip) {
  QueryLog original = SampleLog();
  std::string path = ::testing::TempDir() + "/sqlog_io_test.csv";
  ASSERT_TRUE(LogIo::WriteFile(original, path).ok());
  auto loaded = LogIo::ReadFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), original.size());
  std::remove(path.c_str());
}

TEST(LogIoTest, ReadMissingFileIsIoError) {
  auto loaded = LogIo::ReadFile("/nonexistent/dir/file.csv");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(LogIoTest, WriteToBadPathIsIoError) {
  EXPECT_EQ(LogIo::WriteFile(SampleLog(), "/nonexistent/dir/file.csv").code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace sqlog::log
