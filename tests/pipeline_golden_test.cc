// Golden-file integration test: a fixed-seed generator log pushed
// through PipelineBuilder must reproduce the checked-in statistics
// overview byte for byte — at 1 thread and at 8 threads (the engine
// guarantees byte-identical results at any thread count).
//
// Regenerate after an intentional pipeline change with:
//   SQLOG_REGEN_GOLDEN=1 ./build/tests/pipeline_golden_test

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "catalog/schema.h"
#include "core/parse_cache.h"
#include "core/pipeline.h"
#include "log/generator.h"
#include "log/log_io.h"

#ifndef SQLOG_GOLDEN_DIR
#error "SQLOG_GOLDEN_DIR must point at tests/golden"
#endif

namespace sqlog {
namespace {

constexpr const char* kGoldenPath = SQLOG_GOLDEN_DIR "/pipeline_stats.golden";

log::QueryLog FixedLog() {
  log::GeneratorConfig config;
  config.seed = 20180416;
  config.target_statements = 6000;
  config.human_users = 60;
  config.sws_families = 8;
  config.cth_families = 8;
  return log::GenerateLog(config);
}

core::PipelineResult RunAt(size_t threads, const log::QueryLog& raw,
                           const catalog::Schema& schema, bool parse_cache = true) {
  auto pipeline = core::PipelineBuilder()
                      .WithSchema(&schema)
                      .NumThreads(threads)
                      .ParseCache(parse_cache)
                      .Build();
  EXPECT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  auto result = pipeline->Run(raw);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result.value());
}

std::string ReadGolden() {
  std::ifstream in(kGoldenPath, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(PipelineGoldenTest, StatisticsMatchTheGoldenFileAtOneAndEightThreads) {
  const log::QueryLog raw = FixedLog();
  const catalog::Schema schema = catalog::MakeSkyServerSchema();

  core::PipelineResult serial = RunAt(1, raw, schema);
  const std::string table = serial.stats.ToTable();

  if (std::getenv("SQLOG_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(kGoldenPath, std::ios::binary | std::ios::trunc);
    out << table;
    GTEST_SKIP() << "regenerated " << kGoldenPath;
  }

  const std::string golden = ReadGolden();
  ASSERT_FALSE(golden.empty()) << "missing golden file " << kGoldenPath
                               << " — regenerate with SQLOG_REGEN_GOLDEN=1";
  EXPECT_EQ(table, golden)
      << "pipeline statistics drifted from the golden file; if the change is "
         "intentional, regenerate with SQLOG_REGEN_GOLDEN=1";

  // The parse cache must be output-invisible: with it disabled, and at
  // 8 threads either way, the stats table still matches the golden file
  // and the clean logs agree record for record.
  for (bool parse_cache : {true, false}) {
    for (size_t threads : {size_t{1}, size_t{8}}) {
      if (parse_cache && threads == 1) continue;  // the reference run above
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " parse_cache=" + (parse_cache ? "on" : "off"));
      core::PipelineResult other = RunAt(threads, raw, schema, parse_cache);
      EXPECT_EQ(other.stats.ToTable(), golden);

      // The determinism contract goes beyond the stats table: the
      // actual clean logs must agree record for record.
      ASSERT_EQ(other.clean_log.size(), serial.clean_log.size());
      for (size_t i = 0; i < serial.clean_log.size(); ++i) {
        const auto& a = serial.clean_log.records()[i];
        const auto& b = other.clean_log.records()[i];
        ASSERT_EQ(a.statement, b.statement) << "record " << i;
        ASSERT_EQ(a.timestamp_ms, b.timestamp_ms) << "record " << i;
        ASSERT_EQ(a.user, b.user) << "record " << i;
      }
    }
  }
}

TEST(PipelineGoldenTest, ExplicitDefaultDetectorSelectionMatchesTheGoldenFile) {
  // Naming the paper's detectors explicitly must be indistinguishable
  // from the empty (default) selection — the registry redesign may not
  // perturb the default pipeline in any way.
  const log::QueryLog raw = FixedLog();
  const catalog::Schema schema = catalog::MakeSkyServerSchema();
  auto pipeline = core::PipelineBuilder()
                      .WithSchema(&schema)
                      .Detectors(core::DefaultDetectorIds())
                      .Build();
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  auto result = pipeline->Run(raw);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const std::string golden = ReadGolden();
  ASSERT_FALSE(golden.empty());
  EXPECT_EQ(result->stats.ToTable(), golden);
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(PipelineGoldenTest, StreamingIsByteIdenticalAtAnyBatchSizeAndThreadCount) {
  const log::QueryLog raw = FixedLog();
  const catalog::Schema schema = catalog::MakeSkyServerSchema();

  // The in-memory reference: its clean/removal logs serialized exactly
  // as the streaming writers serialize them.
  core::PipelineResult reference = RunAt(1, raw, schema);
  const std::string want_table = reference.stats.ToTable();
  const std::string want_clean = log::LogIo::ToCsv(reference.clean_log);
  const std::string want_removal = log::LogIo::ToCsv(reference.removal_log);

  const std::string input_path = ::testing::TempDir() + "/golden_stream_input.csv";
  ASSERT_TRUE(log::LogIo::WriteFile(raw, input_path).ok());

  for (size_t batch_size : {size_t{1}, size_t{4096}, raw.size()}) {
    for (size_t threads : {size_t{1}, size_t{8}}) {
      for (bool parse_cache : {true, false}) {
        SCOPED_TRACE("batch=" + std::to_string(batch_size) +
                     " threads=" + std::to_string(threads) +
                     " parse_cache=" + (parse_cache ? "on" : "off"));
        const std::string clean_path = ::testing::TempDir() + "/golden_stream_clean.csv";
        const std::string removal_path =
            ::testing::TempDir() + "/golden_stream_removal.csv";
        auto pipeline = core::PipelineBuilder()
                            .WithSchema(&schema)
                            .NumThreads(threads)
                            .Streaming(true)
                            .BatchSize(batch_size)
                            .ParseCache(parse_cache)
                            .Build();
        ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
        auto run = pipeline->RunStreaming(input_path, clean_path, removal_path);
        ASSERT_TRUE(run.ok()) << run.status().ToString();

        EXPECT_EQ(run->stats.ToTable(), want_table);
        EXPECT_EQ(ReadAll(clean_path), want_clean);
        EXPECT_EQ(ReadAll(removal_path), want_removal);
        std::remove(clean_path.c_str());
        std::remove(removal_path.c_str());
      }
    }
  }
  std::remove(input_path.c_str());
}

TEST(PipelineGoldenTest, StreamingSqbFormatsAreByteIdenticalToTheCsvReference) {
  // Format must be output-invisible exactly like thread count: a `.sqb`
  // input (ingested via dictionary recipes, zero full parses) and `.sqb`
  // outputs (decoded back to CSV) reproduce the CSV reference byte for
  // byte at 1 and 8 threads.
  const log::QueryLog raw = FixedLog();
  const catalog::Schema schema = catalog::MakeSkyServerSchema();

  core::PipelineResult reference = RunAt(1, raw, schema);
  const std::string want_table = reference.stats.ToTable();
  const std::string want_clean = log::LogIo::ToCsv(reference.clean_log);
  const std::string want_removal = log::LogIo::ToCsv(reference.removal_log);

  const std::string csv_input = ::testing::TempDir() + "/golden_fmt_input.csv";
  const std::string sqb_input = ::testing::TempDir() + "/golden_fmt_input.sqb";
  ASSERT_TRUE(log::LogIo::WriteFile(raw, csv_input).ok());
  ASSERT_TRUE(log::LogIo::WriteFile(raw, sqb_input, log::LogFormat::kSqb,
                                    core::BuildStatementRecipe)
                  .ok());

  for (const std::string& input : {csv_input, sqb_input}) {
    for (size_t threads : {size_t{1}, size_t{8}}) {
      for (bool sqb_output : {false, true}) {
        SCOPED_TRACE("input=" + input + " threads=" + std::to_string(threads) +
                     " sqb_output=" + (sqb_output ? "yes" : "no"));
        const char* ext = sqb_output ? ".sqb" : ".csv";
        const std::string clean_path =
            ::testing::TempDir() + "/golden_fmt_clean" + ext;
        const std::string removal_path =
            ::testing::TempDir() + "/golden_fmt_removal" + ext;
        auto pipeline = core::PipelineBuilder()
                            .WithSchema(&schema)
                            .NumThreads(threads)
                            .Streaming(true)
                            .Build();
        ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
        // Input/output formats resolve from the extensions (kAuto).
        auto run = pipeline->RunStreaming(input, clean_path, removal_path);
        ASSERT_TRUE(run.ok()) << run.status().ToString();
        EXPECT_EQ(run->stats.ToTable(), want_table);

        if (sqb_output) {
          auto clean = log::LogIo::ReadFile(clean_path);
          auto removal = log::LogIo::ReadFile(removal_path);
          ASSERT_TRUE(clean.ok()) << clean.status().ToString();
          ASSERT_TRUE(removal.ok()) << removal.status().ToString();
          EXPECT_EQ(log::LogIo::ToCsv(*clean), want_clean);
          EXPECT_EQ(log::LogIo::ToCsv(*removal), want_removal);
        } else {
          EXPECT_EQ(ReadAll(clean_path), want_clean);
          EXPECT_EQ(ReadAll(removal_path), want_removal);
        }
        std::remove(clean_path.c_str());
        std::remove(removal_path.c_str());
      }
    }
  }
  std::remove(csv_input.c_str());
  std::remove(sqb_input.c_str());
}

}  // namespace
}  // namespace sqlog
