// Golden-file integration test: a fixed-seed generator log pushed
// through PipelineBuilder must reproduce the checked-in statistics
// overview byte for byte — at 1 thread and at 8 threads (the engine
// guarantees byte-identical results at any thread count).
//
// Regenerate after an intentional pipeline change with:
//   SQLOG_REGEN_GOLDEN=1 ./build/tests/pipeline_golden_test

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "catalog/schema.h"
#include "core/pipeline.h"
#include "log/generator.h"

#ifndef SQLOG_GOLDEN_DIR
#error "SQLOG_GOLDEN_DIR must point at tests/golden"
#endif

namespace sqlog {
namespace {

constexpr const char* kGoldenPath = SQLOG_GOLDEN_DIR "/pipeline_stats.golden";

log::QueryLog FixedLog() {
  log::GeneratorConfig config;
  config.seed = 20180416;
  config.target_statements = 6000;
  config.human_users = 60;
  config.sws_families = 8;
  config.cth_families = 8;
  return log::GenerateLog(config);
}

core::PipelineResult RunAt(size_t threads, const log::QueryLog& raw,
                           const catalog::Schema& schema) {
  auto pipeline = core::PipelineBuilder()
                      .WithSchema(&schema)
                      .NumThreads(threads)
                      .Build();
  EXPECT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  auto result = pipeline->Run(raw);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result.value());
}

std::string ReadGolden() {
  std::ifstream in(kGoldenPath, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(PipelineGoldenTest, StatisticsMatchTheGoldenFileAtOneAndEightThreads) {
  const log::QueryLog raw = FixedLog();
  const catalog::Schema schema = catalog::MakeSkyServerSchema();

  core::PipelineResult serial = RunAt(1, raw, schema);
  const std::string table = serial.stats.ToTable();

  if (std::getenv("SQLOG_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(kGoldenPath, std::ios::binary | std::ios::trunc);
    out << table;
    GTEST_SKIP() << "regenerated " << kGoldenPath;
  }

  const std::string golden = ReadGolden();
  ASSERT_FALSE(golden.empty()) << "missing golden file " << kGoldenPath
                               << " — regenerate with SQLOG_REGEN_GOLDEN=1";
  EXPECT_EQ(table, golden)
      << "pipeline statistics drifted from the golden file; if the change is "
         "intentional, regenerate with SQLOG_REGEN_GOLDEN=1";

  core::PipelineResult parallel = RunAt(8, raw, schema);
  EXPECT_EQ(parallel.stats.ToTable(), golden) << "8-thread run diverged";

  // The determinism contract goes beyond the stats table: the actual
  // clean logs must agree record for record.
  ASSERT_EQ(parallel.clean_log.size(), serial.clean_log.size());
  for (size_t i = 0; i < serial.clean_log.size(); ++i) {
    const auto& a = serial.clean_log.records()[i];
    const auto& b = parallel.clean_log.records()[i];
    ASSERT_EQ(a.statement, b.statement) << "record " << i;
    ASSERT_EQ(a.timestamp_ms, b.timestamp_ms) << "record " << i;
    ASSERT_EQ(a.user, b.user) << "record " << i;
  }
}

}  // namespace
}  // namespace sqlog
