#ifndef SQLOG_TESTS_ORACLES_ORACLES_H_
#define SQLOG_TESTS_ORACLES_ORACLES_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace sqlog::oracle {

/// Outcome of one differential check. Inputs the front-end *rejects*
/// are vacuously OK — the oracles assert that whatever is accepted is
/// processed consistently, and that rejection is a diagnostic, never a
/// crash.
struct OracleResult {
  bool ok = true;
  std::string message;
};

inline OracleResult Ok() { return {}; }
OracleResult Fail(std::string message);

/// Lexer invariants: token offsets are nondecreasing and in-bounds, the
/// stream ends with exactly one end-of-input sentinel, and lexing is
/// deterministic (same input → same token stream).
OracleResult CheckLexInvariants(std::string_view input);

/// Parse → canonical print → parse must be a fixpoint: the reprint
/// parses, and printing the reparse reproduces the same text. Also
/// checks the non-canonical print re-parses to the same canonical form.
OracleResult CheckParsePrintFixpoint(std::string_view input);

/// Skeleton extraction is idempotent: the template (all four skeleton
/// clauses + fingerprint) of a statement equals the template of its
/// canonical reprint, and repeated analysis is stable.
OracleResult CheckSkeletonIdempotence(std::string_view input);

/// Template invariance (Def. 4): whitespace jitter, identifier case
/// flips, and literal-value replacement must not change the skeleton
/// template. `seed` drives the mutations deterministically.
OracleResult CheckTemplateInvariance(std::string_view input, uint64_t seed);

/// Dedup idempotence: building a synthetic multi-user log from the
/// input's lines and running duplicate removal twice must be a fixpoint
/// (both restricted and unrestricted windows), with consistent stats.
OracleResult CheckDedupIdempotence(std::string_view input, uint64_t seed);

/// Parse-cache equivalence: builds a small log from the input's lines
/// (each statement re-issued verbatim and with template-preserving
/// literal mutations, so the fingerprint cache actually hits), then runs
/// the parse step with the cache off, on, and with a degenerate constant
/// fingerprint that forces every key into one bucket. All three runs
/// must produce identical parsed logs and template stores — the cache
/// may only change how much work is done, never the answer.
OracleResult CheckParseCacheEquivalence(std::string_view input, uint64_t seed);

/// Solver-vs-engine equivalence on fuzz-generated inputs: derives a
/// random Stifle run over the in-memory SkyServer sample from `seed`
/// (statement text jittered through the template-preserving mutator),
/// rewrites it with the paper's solver, and asserts the rewrite returns
/// exactly the union of the original per-query results.
OracleResult CheckSolverEngineEquivalence(uint64_t seed);

/// Binary-log robustness: the bytes are opened as a `.sqb` container.
/// Rejection must be a structured ParseError naming an offset and
/// section; acceptance must decode within the footer's record count.
/// Either way the outcome must be deterministic (two independent
/// readers agree byte-for-byte) — and never a crash, hang, or silent
/// short read.
OracleResult CheckBinLogRobustness(std::string_view input);

/// Every front-end oracle in sequence; stops at the first failure.
OracleResult RunFrontEndOracles(std::string_view input, uint64_t seed);

/// Stable 64-bit FNV-1a of a byte buffer — used to derive deterministic
/// oracle seeds from corpus entries.
uint64_t SeedFromBytes(std::string_view bytes);

/// Fuzz-harness glue: on failure, prints the message and the offending
/// input to stderr and aborts (so libFuzzer / the standalone driver
/// record a finding).
void AbortOnFailure(const OracleResult& result, std::string_view input);

}  // namespace sqlog::oracle

#endif  // SQLOG_TESTS_ORACLES_ORACLES_H_
