#include "oracles.h"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <set>
#include <vector>

#include "core/dedup.h"
#include "core/solver.h"
#include "core/template_store.h"
#include "engine/database.h"
#include "engine/executor.h"
#include "fuzz/sql_mutator.h"
#include "log/binlog.h"
#include "log/record.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "sql/printer.h"
#include "sql/skeleton.h"
#include "util/random.h"
#include "util/string_util.h"

namespace sqlog::oracle {

namespace {

std::string Preview(std::string_view input, size_t limit = 160) {
  std::string out(input.substr(0, limit));
  if (input.size() > limit) out += "...";
  for (char& c : out) {
    if (static_cast<unsigned char>(c) < 0x20 && c != '\n' && c != '\t') c = '?';
  }
  return out;
}

bool SameToken(const sql::Token& a, const sql::Token& b) {
  return a.type == b.type && a.text == b.text && a.offset == b.offset;
}

}  // namespace

OracleResult Fail(std::string message) { return {false, std::move(message)}; }

uint64_t SeedFromBytes(std::string_view bytes) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash ? hash : 1;
}

OracleResult CheckLexInvariants(std::string_view input) {
  auto first = sql::Lex(input);
  auto second = sql::Lex(input);
  if (first.ok() != second.ok()) {
    return Fail("lexing is nondeterministic (ok flag differs)");
  }
  if (!first.ok()) return Ok();

  const auto& tokens = first.value();
  if (tokens.empty() || !tokens.back().Is(sql::TokenType::kEnd)) {
    return Fail("token stream does not end with the kEnd sentinel");
  }
  size_t prev_offset = 0;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].offset > input.size()) {
      return Fail(StrFormat("token %zu offset %zu beyond input size %zu", i,
                            tokens[i].offset, input.size()));
    }
    if (tokens[i].offset < prev_offset) {
      return Fail(StrFormat("token %zu offset %zu goes backwards", i, tokens[i].offset));
    }
    prev_offset = tokens[i].offset;
    if (i + 1 < tokens.size() && tokens[i].Is(sql::TokenType::kEnd)) {
      return Fail("kEnd sentinel appears before the last token");
    }
  }
  if (second.value().size() != tokens.size()) {
    return Fail("lexing is nondeterministic (token count differs)");
  }
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (!SameToken(tokens[i], second.value()[i])) {
      return Fail(StrFormat("lexing is nondeterministic at token %zu", i));
    }
  }
  return Ok();
}

OracleResult CheckParsePrintFixpoint(std::string_view input) {
  auto first = sql::ParseSelect(input);
  if (!first.ok()) return Ok();  // graceful rejection is fine

  sql::PrintOptions canonical;
  std::string p1 = Print(*first.value(), canonical);
  auto second = sql::ParseSelect(p1);
  if (!second.ok()) {
    return Fail(StrFormat("canonical print does not reparse: [%s] → %s",
                          Preview(p1).c_str(), second.status().ToString().c_str()));
  }
  std::string p2 = Print(*second.value(), canonical);
  if (p2 != p1) {
    return Fail(StrFormat("canonical print is not a fixpoint: [%s] vs [%s]",
                          Preview(p1).c_str(), Preview(p2).c_str()));
  }

  sql::PrintOptions verbatim;
  verbatim.canonical = false;
  std::string raw = Print(*first.value(), verbatim);
  auto reparsed_raw = sql::ParseSelect(raw);
  if (!reparsed_raw.ok()) {
    return Fail(StrFormat("non-canonical print does not reparse: [%s]",
                          Preview(raw).c_str()));
  }
  if (Print(*reparsed_raw.value(), canonical) != p1) {
    return Fail("non-canonical print reparses to a different canonical form");
  }
  return Ok();
}

OracleResult CheckSkeletonIdempotence(std::string_view input) {
  std::string text(input);
  auto first = sql::ParseAndAnalyze(text);
  if (!first.ok()) return Ok();

  auto again = sql::ParseAndAnalyze(text);
  if (!again.ok() || !(again->tmpl == first->tmpl)) {
    return Fail("repeated analysis of the same text changes the template");
  }

  sql::PrintOptions canonical;
  std::string printed = Print(*first->ast, canonical);
  auto reparsed = sql::ParseAndAnalyze(printed);
  if (!reparsed.ok()) {
    return Fail(StrFormat("canonical print does not re-analyze: [%s]",
                          Preview(printed).c_str()));
  }
  if (reparsed->tmpl.fingerprint != first->tmpl.fingerprint ||
      !(reparsed->tmpl == first->tmpl)) {
    return Fail(StrFormat("template not idempotent: (%s | %s | %s | %s) vs (%s | %s | %s | %s)",
                          first->tmpl.ssc.c_str(), first->tmpl.sfc.c_str(),
                          first->tmpl.swc.c_str(), first->tmpl.tail.c_str(),
                          reparsed->tmpl.ssc.c_str(), reparsed->tmpl.sfc.c_str(),
                          reparsed->tmpl.swc.c_str(), reparsed->tmpl.tail.c_str()));
  }
  if (reparsed->predicates.size() != first->predicates.size()) {
    return Fail("predicate features change across the canonical reprint");
  }
  return Ok();
}

OracleResult CheckTemplateInvariance(std::string_view input, uint64_t seed) {
  std::string text(input);
  auto base = sql::ParseAndAnalyze(text);
  if (!base.ok()) return Ok();

  Rng rng(seed);
  for (int round = 0; round < 4; ++round) {
    std::string mutated = fuzz::MutatePreservingTemplate(text, rng);
    auto facts = sql::ParseAndAnalyze(mutated);
    if (!facts.ok()) {
      return Fail(StrFormat("template-preserving mutation broke parsing: [%s] → [%s] → %s",
                            Preview(text).c_str(), Preview(mutated).c_str(),
                            facts.status().ToString().c_str()));
    }
    if (!(facts->tmpl == base->tmpl)) {
      return Fail(StrFormat("template changed under ws/case/literal mutation: [%s] → [%s]",
                            Preview(text).c_str(), Preview(mutated).c_str()));
    }

    std::string cosmetic = fuzz::MutatePreservingCanonicalForm(text, rng);
    auto cosmetic_parse = sql::ParseSelect(cosmetic);
    if (!cosmetic_parse.ok()) {
      return Fail(StrFormat("ws/case mutation broke parsing: [%s] → [%s]",
                            Preview(text).c_str(), Preview(cosmetic).c_str()));
    }
    if (Print(*cosmetic_parse.value(), sql::PrintOptions{}) !=
        Print(*base->ast, sql::PrintOptions{})) {
      return Fail(StrFormat("canonical form changed under ws/case mutation: [%s] → [%s]",
                            Preview(text).c_str(), Preview(cosmetic).c_str()));
    }
  }
  return Ok();
}

OracleResult CheckDedupIdempotence(std::string_view input, uint64_t seed) {
  // Turn the input's lines into a small multi-user log with a mix of
  // in-window and out-of-window gaps.
  Rng rng(seed);
  log::QueryLog raw;
  int64_t clock_ms = 1000000;
  size_t line_start = 0;
  auto add_line = [&](std::string_view line, size_t index) {
    if (line.empty()) return;
    log::LogRecord record;
    record.seq = index;
    record.user = StrFormat("user%llu", static_cast<unsigned long long>(rng.Uniform(3)));
    clock_ms += static_cast<int64_t>(rng.Uniform(2500));  // straddles the 1s window
    record.timestamp_ms = clock_ms;
    record.statement = std::string(line);
    raw.Append(std::move(record));
  };
  size_t index = 0;
  for (size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || input[i] == '\n') {
      add_line(input.substr(line_start, i - line_start), index++);
      line_start = i + 1;
    }
  }
  if (raw.empty()) return Ok();
  // Re-issue a few records immediately so duplicates actually exist.
  const size_t n = raw.size();
  for (size_t i = 0; i < n; ++i) {
    if (!rng.Chance(0.4)) continue;
    log::LogRecord dup = raw.records()[i];
    dup.seq = raw.size();
    dup.timestamp_ms += static_cast<int64_t>(rng.Uniform(900));
    raw.Append(std::move(dup));
  }

  for (bool unrestricted : {false, true}) {
    core::DedupOptions options;
    options.unrestricted = unrestricted;
    core::DedupStats stats1, stats2;
    log::QueryLog once = core::RemoveDuplicates(raw, options, &stats1);
    log::QueryLog twice = core::RemoveDuplicates(once, options, &stats2);
    if (stats1.input_count != stats1.removed_count + stats1.output_count) {
      return Fail("dedup stats do not balance");
    }
    if (stats2.removed_count != 0) {
      return Fail(StrFormat("dedup is not idempotent: second pass removed %zu records "
                            "(unrestricted=%d)",
                            stats2.removed_count, unrestricted ? 1 : 0));
    }
    if (once.size() != twice.size()) {
      return Fail("dedup is not idempotent: sizes differ across passes");
    }
    for (size_t i = 0; i < once.size(); ++i) {
      const auto& a = once.records()[i];
      const auto& b = twice.records()[i];
      if (a.statement != b.statement || a.user != b.user ||
          a.timestamp_ms != b.timestamp_ms) {
        return Fail(StrFormat("dedup is not idempotent at record %zu", i));
      }
    }
  }
  return Ok();
}

namespace {

bool SamePredicate(const sql::Predicate& a, const sql::Predicate& b) {
  return a.op == b.op && a.qualifier == b.qualifier && a.column == b.column &&
         a.values == b.values && a.constant_comparison == b.constant_comparison &&
         a.compares_to_null_literal == b.compares_to_null_literal;
}

/// Everything a downstream consumer can observe, except the AST pointer:
/// cache hits deliberately carry facts.ast == nullptr (consumers that
/// need an AST re-parse on demand).
bool SameFacts(const sql::QueryFacts& a, const sql::QueryFacts& b) {
  if (!(a.tmpl == b.tmpl)) return false;
  if (a.sc != b.sc || a.fc != b.fc || a.wc != b.wc) return false;
  if (a.where_conjunctive != b.where_conjunctive) return false;
  if (a.selects_star != b.selects_star) return false;
  if (a.selected_columns != b.selected_columns) return false;
  if (a.tables != b.tables || a.table_functions != b.table_functions) return false;
  if (a.predicates.size() != b.predicates.size()) return false;
  for (size_t i = 0; i < a.predicates.size(); ++i) {
    if (!SamePredicate(a.predicates[i], b.predicates[i])) return false;
  }
  return true;
}

struct ParseRun {
  core::TemplateStore store;
  core::ParsedLog parsed;
};

OracleResult CompareParseRuns(const char* label, const ParseRun& want,
                              const ParseRun& got) {
  const core::ParsedLog& a = want.parsed;
  const core::ParsedLog& b = got.parsed;
  if (a.queries.size() != b.queries.size()) {
    return Fail(StrFormat("%s: query count %zu vs %zu", label, a.queries.size(),
                          b.queries.size()));
  }
  for (size_t i = 0; i < a.queries.size(); ++i) {
    const core::ParsedQuery& x = a.queries[i];
    const core::ParsedQuery& y = b.queries[i];
    if (x.record_index != y.record_index || x.timestamp_ms != y.timestamp_ms ||
        x.user_id != y.user_id || x.row_count != y.row_count ||
        x.template_id != y.template_id) {
      return Fail(StrFormat("%s: query %zu metadata differs", label, i));
    }
    if (!SameFacts(x.facts, y.facts)) {
      return Fail(StrFormat("%s: query %zu facts differ (sc [%s] vs [%s], wc [%s] vs [%s])",
                            label, i, Preview(x.facts.sc).c_str(),
                            Preview(y.facts.sc).c_str(), Preview(x.facts.wc).c_str(),
                            Preview(y.facts.wc).c_str()));
    }
  }
  if (a.non_select_count != b.non_select_count ||
      a.syntax_error_count != b.syntax_error_count) {
    return Fail(StrFormat("%s: drop counts differ", label));
  }
  if (a.diagnostics.size() != b.diagnostics.size()) {
    return Fail(StrFormat("%s: diagnostic count %zu vs %zu", label,
                          a.diagnostics.size(), b.diagnostics.size()));
  }
  for (size_t i = 0; i < a.diagnostics.size(); ++i) {
    if (a.diagnostics[i].record_index != b.diagnostics[i].record_index ||
        a.diagnostics[i].record_seq != b.diagnostics[i].record_seq ||
        a.diagnostics[i].message != b.diagnostics[i].message) {
      return Fail(StrFormat("%s: diagnostic %zu differs: [%s] vs [%s]", label, i,
                            Preview(a.diagnostics[i].message).c_str(),
                            Preview(b.diagnostics[i].message).c_str()));
    }
  }
  if (a.user_streams != b.user_streams || a.user_names != b.user_names) {
    return Fail(StrFormat("%s: user streams differ", label));
  }
  if (want.store.size() != got.store.size()) {
    return Fail(StrFormat("%s: template count %zu vs %zu", label, want.store.size(),
                          got.store.size()));
  }
  for (size_t id = 0; id < want.store.size(); ++id) {
    const core::TemplateInfo& x = want.store.Get(id);
    const core::TemplateInfo& y = got.store.Get(id);
    if (!(x.tmpl == y.tmpl) || x.frequency != y.frequency || x.users != y.users ||
        x.first_query != y.first_query) {
      return Fail(StrFormat("%s: template %zu differs", label, id));
    }
  }
  return Ok();
}

}  // namespace

OracleResult CheckParseCacheEquivalence(std::string_view input, uint64_t seed) {
  Rng rng(seed);
  log::QueryLog raw;
  int64_t clock_ms = 5000000;
  auto add = [&](std::string statement) {
    log::LogRecord record;
    record.seq = raw.size();
    record.user = StrFormat("user%llu", static_cast<unsigned long long>(rng.Uniform(3)));
    clock_ms += 1000 + static_cast<int64_t>(rng.Uniform(1000));
    record.timestamp_ms = clock_ms;
    record.statement = std::move(statement);
    raw.Append(std::move(record));
  };
  size_t line_start = 0;
  size_t lines = 0;
  for (size_t i = 0; i <= input.size() && lines < 48; ++i) {
    if (i != input.size() && input[i] != '\n') continue;
    std::string_view line = input.substr(line_start, i - line_start);
    line_start = i + 1;
    if (line.empty()) continue;
    ++lines;
    std::string text(line);
    add(text);
    // Re-issue with fresh literals (exercises slot rendering on a hit)
    // and verbatim (the pure repeat-hit path).
    add(fuzz::MutatePreservingTemplate(text, rng));
    add(text);
  }
  if (raw.empty()) return Ok();

  auto run = [&raw](const core::ParseCacheOptions& options) {
    auto result = std::make_unique<ParseRun>();
    result->parsed =
        core::ParseLog(raw, result->store, nullptr, /*max_diagnostics=*/8, options);
    return result;
  };
  core::ParseCacheOptions off;
  off.enabled = false;
  auto reference = run(off);

  auto cached = run(core::ParseCacheOptions{});
  OracleResult result = CompareParseRuns("parse cache on", *reference, *cached);
  if (!result.ok) return result;

  // Degenerate fingerprint: every key lands in one bucket, so hits are
  // decided purely by the full-key comparison. Any confusion between
  // distinct templates would show up as different assignments here.
  core::ParseCacheOptions collide;
  collide.fingerprint_for_test = [](std::string_view) {
    return sql::TokenFingerprint{0x1234, 0x5678};
  };
  auto collided = run(collide);
  return CompareParseRuns("forced fingerprint collision", *reference, *collided);
}

namespace {

/// Shared read-only engine fixture for the solver oracle; built once.
struct EngineFixture {
  engine::Database db;
  engine::Executor executor{&db};
  std::vector<int64_t> objids;
  bool ok = false;
};

const EngineFixture& Fixture() {
  static EngineFixture* fixture = [] {
    auto* f = new EngineFixture();
    f->ok = engine::PopulateSkyServerSample(f->db, 400).ok();
    if (f->ok) f->objids = engine::PhotoObjIds(f->db);
    return f;
  }();
  return *fixture;
}

std::multiset<std::string> RowsOf(const engine::Executor& executor, const std::string& sql,
                                  OracleResult* error) {
  auto result = executor.ExecuteSql(sql);
  std::multiset<std::string> rows;
  if (!result.ok()) {
    *error = Fail(StrFormat("engine rejected [%s]: %s", Preview(sql).c_str(),
                            result.status().ToString().c_str()));
    return rows;
  }
  for (const auto& row : result->rows) {
    std::string key;
    for (const auto& cell : row) {
      key += cell.ToString();
      key.push_back('\x1f');
    }
    rows.insert(std::move(key));
  }
  return rows;
}

}  // namespace

OracleResult CheckSolverEngineEquivalence(uint64_t seed) {
  const EngineFixture& fixture = Fixture();
  if (!fixture.ok || fixture.objids.empty()) {
    return Fail("engine sample population failed");
  }

  Rng rng(seed);
  size_t run = 2 + rng.Uniform(6);
  std::vector<std::string> statements;
  std::set<int64_t> used;
  for (size_t i = 0; i < run; ++i) {
    int64_t objid = fixture.objids[rng.Uniform(fixture.objids.size())];
    if (!used.insert(objid).second) continue;  // IN dedups; keep sets equal
    std::string statement =
        StrFormat("SELECT objID, ra, dec FROM photoPrimary WHERE objID = %lld",
                  static_cast<long long>(objid));
    // Jitter whitespace / identifier case: the rewrite must be immune to
    // the surface form the front-end saw.
    statements.push_back(fuzz::MutatePreservingCanonicalForm(statement, rng));
  }
  if (statements.size() < 2) return Ok();

  OracleResult error = Ok();
  std::multiset<std::string> expected;
  std::vector<core::ParsedQuery> parsed(statements.size());
  for (size_t i = 0; i < statements.size(); ++i) {
    for (const auto& row : RowsOf(fixture.executor, statements[i], &error)) {
      expected.insert(row);
    }
    if (!error.ok) return error;
    auto facts = sql::ParseAndAnalyze(statements[i]);
    if (!facts.ok()) {
      return Fail(StrFormat("jittered statement does not parse: [%s]",
                            Preview(statements[i]).c_str()));
    }
    parsed[i].facts = std::move(facts.value());
  }

  std::vector<const core::ParsedQuery*> pointers;
  for (const auto& query : parsed) pointers.push_back(&query);
  auto rewritten = core::RewriteDwStifle(pointers);
  if (!rewritten.ok()) {
    return Fail(StrFormat("DW rewrite failed: %s", rewritten.status().ToString().c_str()));
  }
  std::multiset<std::string> actual = RowsOf(fixture.executor, rewritten.value(), &error);
  if (!error.ok) return error;
  if (actual != expected) {
    return Fail(StrFormat("DW rewrite returns different rows (%zu vs %zu) for [%s]",
                          actual.size(), expected.size(),
                          Preview(rewritten.value()).c_str()));
  }
  return Ok();
}

namespace {

bool SameRecord(const log::LogRecord& a, const log::LogRecord& b) {
  return a.seq == b.seq && a.timestamp_ms == b.timestamp_ms && a.user == b.user &&
         a.session == b.session && a.statement == b.statement &&
         a.row_count == b.row_count && a.truth == b.truth;
}

/// Opens `input` as a `.sqb` buffer and drains it. Returns the final
/// status (OK or the first structural error); decoded records land in
/// `*records`.
Status DrainBinLog(std::string_view input, std::vector<log::LogRecord>* records) {
  log::BinLogReader reader;
  SQLOG_RETURN_IF_ERROR(reader.OpenFromBuffer(input));
  log::LogRecord record;
  bool eof = false;
  while (true) {
    SQLOG_RETURN_IF_ERROR(reader.ReadRecord(&record, &eof));
    if (eof) return Status::OK();
    if (records->size() >= reader.record_count()) {
      return Status::Internal("reader produced more records than the footer declares");
    }
    records->push_back(record);
  }
}

}  // namespace

OracleResult CheckBinLogRobustness(std::string_view input) {
  std::vector<log::LogRecord> first_records;
  Status first = DrainBinLog(input, &first_records);
  if (!first.ok()) {
    if (first.code() != StatusCode::kParseError) {
      return Fail(StrFormat("binlog rejection is %s, not ParseError: %s",
                            StatusCodeName(first.code()), first.message().c_str()));
    }
    if (first.message().find("at offset") == std::string::npos ||
        first.message().find("section") == std::string::npos) {
      return Fail("binlog ParseError does not name an offset and section: " +
                  first.message());
    }
  }
  // Determinism: a second, independent reader must agree exactly —
  // same status text and, on acceptance, the same record stream.
  std::vector<log::LogRecord> second_records;
  Status second = DrainBinLog(input, &second_records);
  if (first.code() != second.code() || first.message() != second.message()) {
    return Fail(StrFormat("binlog decode is nondeterministic: '%s' vs '%s'",
                          first.ToString().c_str(), second.ToString().c_str()));
  }
  if (first_records.size() != second_records.size()) {
    return Fail(StrFormat("binlog decode is nondeterministic: %zu vs %zu records",
                          first_records.size(), second_records.size()));
  }
  for (size_t i = 0; i < first_records.size(); ++i) {
    if (!SameRecord(first_records[i], second_records[i])) {
      return Fail(StrFormat("binlog decode is nondeterministic at record %zu", i));
    }
  }
  return Ok();
}

OracleResult RunFrontEndOracles(std::string_view input, uint64_t seed) {
  OracleResult result = CheckLexInvariants(input);
  if (!result.ok) return result;
  result = CheckParsePrintFixpoint(input);
  if (!result.ok) return result;
  result = CheckSkeletonIdempotence(input);
  if (!result.ok) return result;
  result = CheckTemplateInvariance(input, seed);
  if (!result.ok) return result;
  result = CheckParseCacheEquivalence(input, seed);
  if (!result.ok) return result;
  return CheckDedupIdempotence(input, seed);
}

void AbortOnFailure(const OracleResult& result, std::string_view input) {
  if (result.ok) return;
  std::fprintf(stderr, "\n=== ORACLE FAILURE ===\n%s\n--- input (%zu bytes) ---\n",
               result.message.c_str(), input.size());
  std::fwrite(input.data(), 1, input.size(), stderr);
  std::fprintf(stderr, "\n======================\n");
  std::abort();
}

}  // namespace sqlog::oracle
