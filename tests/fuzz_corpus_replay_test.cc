// Replays every checked-in fuzz corpus entry (fuzz/corpus/**) through
// the differential oracles — a plain ctest runner, no libFuzzer needed.
// Each file under fuzz/corpus/<harness>/ is one input: regression
// entries are named regression-*; the rest are seeds. Entries under
// solver/ hold a text seed for the solver-vs-engine equivalence oracle
// instead of raw SQL; entries under binlog/ hold `.sqb` container bytes
// (valid and deliberately corrupted) for the binlog robustness oracle.
//
// Run just this suite with:  ctest -L check-fuzz-corpus

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "oracles.h"

#ifndef SQLOG_FUZZ_CORPUS_DIR
#error "SQLOG_FUZZ_CORPUS_DIR must point at fuzz/corpus"
#endif

namespace sqlog {
namespace {

namespace fs = std::filesystem;

struct CorpusEntry {
  std::string harness;  // immediate subdirectory: lexer, parser, ...
  fs::path path;
  std::string bytes;
};

std::vector<CorpusEntry> LoadCorpus() {
  std::vector<CorpusEntry> entries;
  const fs::path root(SQLOG_FUZZ_CORPUS_DIR);
  for (const auto& dir : fs::directory_iterator(root)) {
    if (!dir.is_directory()) continue;
    for (const auto& file : fs::recursive_directory_iterator(dir.path())) {
      if (!file.is_regular_file()) continue;
      std::ifstream in(file.path(), std::ios::binary);
      std::string bytes((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
      entries.push_back({dir.path().filename().string(), file.path(), std::move(bytes)});
    }
  }
  return entries;
}

TEST(FuzzCorpusReplayTest, CorpusCoversEveryHarness) {
  std::map<std::string, size_t> per_harness;
  for (const auto& entry : LoadCorpus()) per_harness[entry.harness]++;
  for (const char* harness :
       {"lexer", "parser", "printer", "skeleton", "dedup", "solver", "binlog"}) {
    EXPECT_GT(per_harness[harness], 0u) << "no corpus entries for " << harness;
  }
}

TEST(FuzzCorpusReplayTest, EveryEntryPassesItsOracles) {
  const auto corpus = LoadCorpus();
  ASSERT_FALSE(corpus.empty()) << "corpus directory is empty: " << SQLOG_FUZZ_CORPUS_DIR;

  size_t replayed = 0;
  for (const auto& entry : corpus) {
    const uint64_t seed = oracle::SeedFromBytes(entry.bytes);
    oracle::OracleResult result;
    if (entry.harness == "solver") {
      result = oracle::CheckSolverEngineEquivalence(seed);
    } else if (entry.harness == "binlog") {
      // Binary `.sqb` container bytes, not SQL text: the robustness
      // oracle (structured rejection + deterministic decode) applies.
      result = oracle::CheckBinLogRobustness(entry.bytes);
    } else {
      result = oracle::RunFrontEndOracles(entry.bytes, seed);
    }
    EXPECT_TRUE(result.ok) << entry.path << ": " << result.message;
    ++replayed;
  }
  // Keep the floor in sync with the corpus — shrinking it is a red flag.
  EXPECT_GE(replayed, 30u);
}

}  // namespace
}  // namespace sqlog
