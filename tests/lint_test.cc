// Self-tests for sqlog-lint (tools/lint): each rule fires on its
// negative fixture, suppressions behave exactly as documented, and
// config parsing rejects malformed input. The fixtures under
// tests/lint/ double as the inputs for the WILL_FAIL ctest entries that
// exercise the CLI end to end.

#include "lint/facts.h"
#include "lint/linter.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace sqlog::lint {
namespace {

std::string ReadFixture(const std::string& name) {
  std::ifstream in(std::string(SQLOG_LINT_FIXTURE_DIR) + "/" + name);
  EXPECT_TRUE(in.good()) << "missing fixture " << name;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

LintConfig TestConfig() {
  LintConfig config;
  config.r1_allow = {"src/sql/", "tests/oracles/"};
  config.manifest.push_back({"src/util/thread_pool.h", "ThreadPool"});
  config.r6_allow = {"src/core/detectors.cc"};
  config.r7_allow = {"src/util/byte_class.h"};
  return config;
}

/// TestConfig plus a three-layer DAG (tools → core → sql → util) and one
/// hot file, for the cross-TU rules.
LintConfig LayeredConfig() {
  LintConfig config = TestConfig();
  config.layers = {{"util", "src/util/"},
                   {"sql", "src/sql/"},
                   {"core", "src/core/"},
                   {"tools", "tools/"}};
  config.layer_edges = {{"sql", "util"}, {"core", "sql"}, {"tools", "core"}};
  config.hot = {"src/sql/lexer.cc"};
  return config;
}

std::vector<std::string> Rules(const std::vector<Finding>& findings) {
  std::vector<std::string> rules;
  for (const auto& f : findings) rules.push_back(f.rule);
  return rules;
}

size_t CountRule(const std::vector<Finding>& findings, const std::string& rule) {
  return static_cast<size_t>(std::count_if(
      findings.begin(), findings.end(),
      [&](const Finding& f) { return f.rule == rule; }));
}

// --- Each rule fires on its fixture -----------------------------------

TEST(LintRuleTest, R1FiresOnDirectParseOutsideAllowlist) {
  auto findings = LintSource(TestConfig(), "src/core/report.cc",
                             ReadFixture("r1_direct_parse.cc"));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "R1");
  EXPECT_NE(findings[0].message.find("ParseSelect"), std::string::npos);
}

TEST(LintRuleTest, R1SilentOnAllowlistedPath) {
  auto findings = LintSource(TestConfig(), "src/sql/parser_util.cc",
                             ReadFixture("r1_direct_parse.cc"));
  EXPECT_TRUE(findings.empty());
}

TEST(LintRuleTest, R2FiresOnEveryNondeterminismSource) {
  auto findings = LintSource(TestConfig(), "src/core/sampler.cc",
                             ReadFixture("r2_wall_clock.cc"));
  // std::time, random_device, default-seeded mt19937, rand.
  EXPECT_EQ(CountRule(findings, "R2"), 4u) << "rules: " << ::testing::PrintToString(Rules(findings));
}

TEST(LintRuleTest, R2ScopedToCoreAndLog) {
  auto in_log = LintSource(TestConfig(), "src/log/sampler.cc",
                           ReadFixture("r2_wall_clock.cc"));
  EXPECT_EQ(CountRule(in_log, "R2"), 4u);
  auto in_tools = LintSource(TestConfig(), "tools/sampler.cc",
                             ReadFixture("r2_wall_clock.cc"));
  EXPECT_EQ(CountRule(in_tools, "R2"), 0u);
}

TEST(LintRuleTest, R3FiresOnUnorderedIterationWithoutTag) {
  auto findings = LintSource(TestConfig(), "src/core/tally.cc",
                             ReadFixture("r3_unordered_iteration.cc"));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "R3");
}

TEST(LintRuleTest, R4FiresOnRawMutex) {
  auto findings = LintSource(TestConfig(), "src/util/counter.cc",
                             ReadFixture("r4_raw_mutex.cc"));
  EXPECT_GE(CountRule(findings, "R4"), 2u);  // lock_guard line + member line
}

TEST(LintRuleTest, R4ExemptsTheWrapperHeaderItself) {
  auto findings = LintSource(TestConfig(), "src/util/thread_annotations.h",
                             "#include <mutex>\nstd::mutex raw;\n");
  EXPECT_EQ(CountRule(findings, "R4"), 0u);
}

TEST(LintRuleTest, R5FiresOnUnannotatedManifestMember) {
  auto findings = LintSource(TestConfig(), "src/util/thread_pool.h",
                             ReadFixture("r5_unannotated_member.cc"));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "R5");
  EXPECT_NE(findings[0].message.find("thread_count_"), std::string::npos);
}

TEST(LintRuleTest, R5AcceptsMarkedMembers) {
  const char* marked =
      "class ThreadPool {\n"
      " private:\n"
      "  unsigned thread_count_ SQLOG_CONST_AFTER_INIT = 0;\n"
      "  bool stopping_ SQLOG_GUARDED_BY(mutex_) = false;\n"
      "  Mutex mutex_;\n"
      "};\n";
  auto findings = LintSource(TestConfig(), "src/util/thread_pool.h", marked);
  EXPECT_TRUE(findings.empty()) << findings[0].ToString();
}

TEST(LintRuleTest, R5ManifestTypeMissingFromFileIsConfigError) {
  auto findings = LintSource(TestConfig(), "src/util/thread_pool.h",
                             "// no ThreadPool declared here\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "config");
}

TEST(LintRuleTest, R6FiresOnDetectorSubclassOutsideRegistrationUnit) {
  auto findings = LintSource(TestConfig(), "src/core/rogue_detector.cc",
                             ReadFixture("r6_unregistered_detector.cc"));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "R6");
  EXPECT_NE(findings[0].message.find("registration unit"), std::string::npos);
}

TEST(LintRuleTest, R6SilentOnTheAllowlistedRegistrationUnit) {
  auto findings = LintSource(TestConfig(), "src/core/detectors.cc",
                             ReadFixture("r6_unregistered_detector.cc"));
  EXPECT_TRUE(findings.empty());
}

TEST(LintRuleTest, R6ScopedToSrc) {
  // Tests and tools may declare stub detectors freely.
  auto findings = LintSource(TestConfig(), "tests/detector_registry_test.cc",
                             ReadFixture("r6_unregistered_detector.cc"));
  EXPECT_TRUE(findings.empty());
}

TEST(LintRuleTest, R6CatchesQualifiedAndDefaultInheritance) {
  auto qualified = LintSource(TestConfig(), "src/analysis/extra.cc",
                              "class X final : public core::Detector {};\n");
  EXPECT_EQ(CountRule(qualified, "R6"), 1u);
  auto implicit = LintSource(TestConfig(), "src/analysis/extra.cc",
                             "struct X : Detector {};\n");
  EXPECT_EQ(CountRule(implicit, "R6"), 1u);
}

TEST(LintRuleTest, R6IgnoresPlainTypeUses) {
  const char* uses =
      "class Detector {};\n"
      "const Detector& Pick(const std::vector<const Detector*>& all);\n"
      "class Holder {\n"
      " public:\n"
      "  Detector* active_ = nullptr;\n"
      "};\n"
      "class Registry : public DetectorRegistry {};\n";
  auto findings = LintSource(TestConfig(), "src/core/holder.h", uses);
  EXPECT_EQ(CountRule(findings, "R6"), 0u)
      << ::testing::PrintToString(Rules(findings));
}

TEST(LintRuleTest, R6IsSuppressible) {
  const char* content =
      "// sqlog-lint: allow(R6 prototype detector pending registration)\n"
      "class Probe : public Detector {};\n";
  EXPECT_TRUE(LintSource(TestConfig(), "src/analysis/probe.cc", content).empty());
}

TEST(LintRuleTest, R7FiresOnEveryCtypeClassifier) {
  auto findings = LintSource(TestConfig(), "src/sql/scan.cc",
                             ReadFixture("r7_cctype.cc"));
  // isalpha, isalnum, isxdigit, tolower.
  EXPECT_EQ(CountRule(findings, "R7"), 4u)
      << ::testing::PrintToString(Rules(findings));
}

TEST(LintRuleTest, R7CatchesQualifiedAndBareCalls) {
  auto findings = LintSource(
      TestConfig(), "src/util/x.cc",
      "bool A(char c) { return std::isdigit((unsigned char)c); }\n"
      "bool B(char c) { return isspace((unsigned char)c) != 0; }\n");
  EXPECT_EQ(CountRule(findings, "R7"), 2u);
}

TEST(LintRuleTest, R7SilentOnTheByteClassHeader) {
  auto findings = LintSource(TestConfig(), "src/util/byte_class.h",
                             "bool Legacy(char c) { return isupper(c); }\n");
  EXPECT_TRUE(findings.empty());
}

TEST(LintRuleTest, R7ScopedToSrc) {
  // Tests, tools, and benches may compare against <cctype> freely (the
  // lexer locale-regression test does exactly that).
  auto findings = LintSource(TestConfig(), "tests/lexer_test.cc",
                             ReadFixture("r7_cctype.cc"));
  EXPECT_TRUE(findings.empty());
}

TEST(LintRuleTest, R7IgnoresByteClassHelperNames) {
  auto findings = LintSource(
      TestConfig(), "src/sql/lexer.cc",
      "bool A(char c) { return IsDigitByte(c) || IsAlphaByte(c); }\n"
      "char B(char c) { return ToLowerByte(c); }\n");
  EXPECT_EQ(CountRule(findings, "R7"), 0u)
      << ::testing::PrintToString(Rules(findings));
}

TEST(LintRuleTest, R7IsSuppressible) {
  const char* content =
      "// sqlog-lint: allow(R7 ASCII-only input proven by the caller)\n"
      "bool Head(char c) { return isalpha((unsigned char)c); }\n";
  EXPECT_TRUE(LintSource(TestConfig(), "src/sql/head.cc", content).empty());
}

// --- Suppression semantics --------------------------------------------

TEST(LintSuppressionTest, WellFormedAllowsSilenceEverything) {
  auto findings = LintSource(TestConfig(), "src/core/suppressed.cc",
                             ReadFixture("suppressed_ok.cc"));
  EXPECT_TRUE(findings.empty()) << findings[0].ToString();
}

TEST(LintSuppressionTest, AllowForOneRuleDoesNotSilenceAnother) {
  auto findings = LintSource(TestConfig(), "src/util/wrong_rule.cc",
                             ReadFixture("suppression_wrong_rule.cc"));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "R4");
}

TEST(LintSuppressionTest, UnknownRuleIdIsItselfAFinding) {
  auto findings = LintSource(TestConfig(), "src/util/unknown_rule.cc",
                             ReadFixture("suppression_unknown_rule.cc"));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "config");
  EXPECT_NE(findings[0].message.find("R42"), std::string::npos);
  EXPECT_NE(findings[0].message.find("expected R1..R10"), std::string::npos);
}

TEST(LintSuppressionTest, MissingReasonIsAFinding) {
  auto findings = LintSource(TestConfig(), "src/core/x.cc",
                             "// sqlog-lint: allow(R2)\nint x = rand();\n");
  // The malformed allow is a config finding AND, because it is void, the
  // R2 it meant to cover still fires.
  EXPECT_EQ(CountRule(findings, "config"), 1u);
  EXPECT_EQ(CountRule(findings, "R2"), 1u);
}

TEST(LintSuppressionTest, AllowCoversOwnLineAndNextLineOnly) {
  const char* two_below =
      "// sqlog-lint: allow(R2 reason here)\n"
      "\n"
      "int x = rand();\n";
  auto findings = LintSource(TestConfig(), "src/core/x.cc", two_below);
  EXPECT_EQ(CountRule(findings, "R2"), 1u) << "blank line must break coverage";

  const char* same_line = "int x = rand();  // sqlog-lint: allow(R2 one-off)\n";
  EXPECT_TRUE(LintSource(TestConfig(), "src/core/x.cc", same_line).empty());
}

TEST(LintSuppressionTest, ViolationsInsideCommentsOrStringsAreIgnored) {
  const char* content =
      "// calling rand() would be bad\n"
      "/* std::mutex in prose */\n"
      "const char* msg = \"rand() is banned\";\n";
  EXPECT_TRUE(LintSource(TestConfig(), "src/core/x.cc", content).empty());
}

// --- R8: layering DAG ---------------------------------------------------

TEST(LintLayeringTest, R8FiresOnBackEdgeInclude) {
  auto findings = LintSource(LayeredConfig(), "src/util/backedge.cc",
                             ReadFixture("r8_layering_backedge.cc"));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "R8");
  EXPECT_NE(findings[0].message.find("'util'"), std::string::npos);
  EXPECT_NE(findings[0].message.find("'core'"), std::string::npos);
}

TEST(LintLayeringTest, R8AllowsDeclaredAndTransitiveEdges) {
  // tools → core is declared, tools → util follows transitively through
  // core → sql → util; same-layer includes are always fine.
  const char* content =
      "#include \"core/template_store.h\"\n"
      "#include \"util/hash.h\"\n"
      "#include \"lint/facts.h\"\n";
  EXPECT_TRUE(LintSource(LayeredConfig(), "tools/sqlog_lint.cc", content).empty());
}

TEST(LintLayeringTest, R8IgnoresAngledIncludesAndUnlayeredFiles) {
  // <vector> is a system header; bench/ sits outside every layer prefix.
  auto layered = LintSource(LayeredConfig(), "src/util/x.cc",
                            "#include <core/template_store.h>\n");
  EXPECT_TRUE(layered.empty());
  auto unlayered = LintSource(LayeredConfig(), "bench/parse_bench.cc",
                              "#include \"core/template_store.h\"\n");
  EXPECT_TRUE(unlayered.empty());
}

TEST(LintLayeringTest, R8IsSuppressible) {
  const char* content =
      "// sqlog-lint: allow(R8 transitional include, tracked in the roadmap)\n"
      "#include \"core/template_store.h\"\n";
  EXPECT_TRUE(LintSource(LayeredConfig(), "src/util/backedge.cc", content).empty());
}

TEST(LintLayeringTest, R8ReportsIncludeCyclesAcrossFiles) {
  // Same-layer includes pass the edge check, but a mutual include is
  // still a cycle in the cross-file graph.
  FactDb db;
  db["src/core/a.h"] = ExtractFacts("#include \"core/b.h\"\n");
  db["src/core/b.h"] = ExtractFacts("#include \"core/a.h\"\n");
  auto findings = LintDb(LayeredConfig(), db);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "R8");
  EXPECT_NE(findings[0].message.find("include cycle"), std::string::npos);
  EXPECT_NE(findings[0].message.find("src/core/a.h"), std::string::npos);
  EXPECT_NE(findings[0].message.find("src/core/b.h"), std::string::npos);
}

// --- R9: lock-order deadlocks -------------------------------------------

TEST(LintLockOrderTest, R9FiresOnOppositeOrderAcquisitions) {
  auto findings = LintSource(LayeredConfig(), "src/util/lock_cycle.cc",
                             ReadFixture("r9_lock_cycle.cc"));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "R9");
  EXPECT_NE(findings[0].message.find("lock-order cycle"), std::string::npos);
  // Both witness paths are listed with their enclosing functions.
  EXPECT_NE(findings[0].message.find("Pair::First"), std::string::npos);
  EXPECT_NE(findings[0].message.find("Pair::Second"), std::string::npos);
}

TEST(LintLockOrderTest, R9ConsistentOrderIsSilent) {
  const char* content =
      "class T {\n"
      " public:\n"
      "  void A() { MutexLock l(a_); MutexLock m(b_); }\n"
      "  void B() { MutexLock l(a_); MutexLock m(b_); }\n"
      " private:\n"
      "  Mutex a_;\n"
      "  Mutex b_;\n"
      "};\n";
  EXPECT_TRUE(LintSource(LayeredConfig(), "src/util/ordered.cc", content).empty());
}

TEST(LintLockOrderTest, R9FlagsReacquisitionOfAHeldLock) {
  const char* content =
      "class T {\n"
      " public:\n"
      "  void Twice() { MutexLock l(mu_); MutexLock m(mu_); }\n"
      " private:\n"
      "  Mutex mu_;\n"
      "};\n";
  auto findings = LintSource(LayeredConfig(), "src/util/twice.cc", content);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "R9");
  EXPECT_NE(findings[0].message.find("already held"), std::string::npos);
}

TEST(LintLockOrderTest, R9ResolvesOneLevelOfCalls) {
  // Outer takes a_ then calls Helper (which takes b_); Opposite takes
  // them directly in the reverse order — a cycle only visible through
  // call resolution.
  const char* content =
      "class T {\n"
      " public:\n"
      "  void Outer() {\n"
      "    MutexLock l(a_);\n"
      "    Helper();\n"
      "  }\n"
      "  void Helper() { MutexLock l(b_); }\n"
      "  void Opposite() {\n"
      "    MutexLock l(b_);\n"
      "    MutexLock m(a_);\n"
      "  }\n"
      " private:\n"
      "  Mutex a_;\n"
      "  Mutex b_;\n"
      "};\n";
  auto findings = LintSource(LayeredConfig(), "src/util/nested.cc", content);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "R9");
  EXPECT_NE(findings[0].message.find("call to T::Helper"), std::string::npos);
}

TEST(LintLockOrderTest, R9IsSuppressibleAtTheAcquisitionSite) {
  const char* content =
      "class T {\n"
      " public:\n"
      "  void First() { MutexLock l(a_); MutexLock m(b_); }\n"
      "  void Second() {\n"
      "    MutexLock l(b_);\n"
      "    // sqlog-lint: allow(R9 b_ holders never run concurrently with First)\n"
      "    MutexLock m(a_);\n"
      "  }\n"
      " private:\n"
      "  Mutex a_;\n"
      "  Mutex b_;\n"
      "};\n";
  EXPECT_TRUE(LintSource(LayeredConfig(), "src/util/waived.cc", content).empty());
}

// --- R10: hot-path allocations ------------------------------------------

TEST(LintHotPathTest, R10FiresInConfiguredHotFile) {
  const char* content =
      "void Push(std::vector<int>* out) { out->push_back(1); }\n";
  auto findings = LintSource(LayeredConfig(), "src/sql/lexer.cc", content);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "R10");
  EXPECT_NE(findings[0].message.find("hot file"), std::string::npos);
}

TEST(LintHotPathTest, R10FiresOnMarkedFunctionOutsideHotFiles) {
  auto findings = LintSource(LayeredConfig(), "src/util/hot_alloc.cc",
                             ReadFixture("r10_hot_alloc.cc"));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "R10");
  EXPECT_NE(findings[0].message.find("marked sqlog-hot"), std::string::npos);
}

TEST(LintHotPathTest, R10SilentInColdFunctions) {
  const char* content =
      "void Push(std::vector<int>* out) {\n"
      "  out->push_back(1);\n"
      "  std::string s = \"cold\";\n"
      "  auto p = std::make_unique<int>(2);\n"
      "}\n";
  EXPECT_TRUE(LintSource(LayeredConfig(), "src/util/cold.cc", content).empty());
}

TEST(LintHotPathTest, R10CatchesEveryAllocationKind) {
  const char* content =
      "// sqlog-hot\n"
      "void Hot(std::vector<int>* out) {\n"
      "  out->push_back(1);\n"
      "  std::string s;\n"
      "  auto p = std::make_unique<int>(2);\n"
      "  int* q = new int(3);\n"
      "}\n";
  auto findings = LintSource(LayeredConfig(), "src/util/kinds.cc", content);
  EXPECT_EQ(CountRule(findings, "R10"), 4u)
      << ::testing::PrintToString(Rules(findings));
}

TEST(LintHotPathTest, R10SignatureSuppressionCoversTheWholeFunction) {
  const char* content =
      "// sqlog-hot — sqlog-lint: allow(R10 appends into the caller's reused buffer)\n"
      "void Hot(std::vector<int>* out) {\n"
      "  out->push_back(1);\n"
      "  out->push_back(2);\n"
      "  out->push_back(3);\n"
      "}\n";
  EXPECT_TRUE(LintSource(LayeredConfig(), "src/util/waived.cc", content).empty());
}

TEST(LintHotPathTest, R10LineSuppressionHasOwnPlusNextLineReach) {
  // The allow on line 3 reaches line 4 (documented own+next coverage)
  // but not line 5, which must still fire.
  const char* content =
      "// sqlog-hot\n"
      "void Hot(std::vector<int>* out) {\n"
      "  out->push_back(1);  // sqlog-lint: allow(R10 one justified push)\n"
      "  out->push_back(2);\n"
      "  out->push_back(3);\n"
      "}\n";
  auto findings = LintSource(LayeredConfig(), "src/util/partial.cc", content);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 5u);
}

// --- Masking-lexer regressions ------------------------------------------

TEST(LintLexerTest, RawStringContentsAreMasked) {
  // The banned identifiers live only inside raw-string payloads,
  // including the encoding-prefixed forms and a custom delimiter.
  const char* content =
      "const char* a = R\"(rand() and a \" quote and std::mutex)\";\n"
      "const char* b = u8R\"(std::time(nullptr))\";\n"
      "const char* c = LR\"sep(random_device)sep\";\n";
  EXPECT_TRUE(LintSource(TestConfig(), "src/core/raw.cc", content).empty());
}

TEST(LintLexerTest, RawStringPrefixRequiresWordBoundary) {
  // `xR"(` is an identifier ending in R, not a raw-string intro: the
  // quote opens an ordinary literal that closes at the next quote, so
  // the rand() between the two literals is real code and must fire.
  // (Raw-string handling would swallow everything up to the final `)"`.)
  const char* content = "auto s = xR\"(a\" rand() \"b)\";\n";
  auto findings = LintSource(TestConfig(), "src/core/boundary.cc", content);
  EXPECT_EQ(CountRule(findings, "R2"), 1u)
      << ::testing::PrintToString(Rules(findings));
}

TEST(LintLexerTest, BackslashContinuedLineCommentMasksTheNextLine) {
  // A `//` comment ending in a backslash splices the next line into the
  // comment ([lex.phases]p2), so the rand() below never reaches code.
  const char* content =
      "// the next line is still part of this comment \\\n"
      "int x = rand();\n"
      "int y = 0;\n";
  EXPECT_TRUE(LintSource(TestConfig(), "src/core/spliced.cc", content).empty());
}

TEST(LintLexerTest, SuppressionInsideContinuedCommentStillParses) {
  // The masks stay line-aligned through a spliced comment: a suppression
  // in the continuation line applies to the line it sits on.
  const char* content =
      "// leading \\\n"
      "   sqlog-lint: allow(R2 seeded from the run manifest)\n"
      "int x = rand();\n";
  EXPECT_TRUE(LintSource(TestConfig(), "src/core/spliced2.cc", content).empty());
}

// --- Config parsing ----------------------------------------------------

TEST(LintConfigTest, ParsesDirectivesAndComments) {
  auto config = ParseConfig(
      "# comment\n"
      "r1-allow src/sql/\n"
      "\n"
      "manifest src/util/thread_pool.h ThreadPool\n"
      "r6-allow src/core/detectors.cc\n"
      "r7-allow src/util/byte_class.h\n",
      "test");
  ASSERT_TRUE(config.ok());
  ASSERT_EQ(config->r1_allow.size(), 1u);
  EXPECT_EQ(config->r1_allow[0], "src/sql/");
  ASSERT_EQ(config->manifest.size(), 1u);
  EXPECT_EQ(config->manifest[0].type_name, "ThreadPool");
  ASSERT_EQ(config->r6_allow.size(), 1u);
  EXPECT_EQ(config->r6_allow[0], "src/core/detectors.cc");
  ASSERT_EQ(config->r7_allow.size(), 1u);
  EXPECT_EQ(config->r7_allow[0], "src/util/byte_class.h");
}

TEST(LintConfigTest, ParsesLayerHotAndExcludeDirectives) {
  auto config = ParseConfig(
      "layer util src/util/\n"
      "layer core src/core/\n"
      "layer-edge core util\n"
      "hot src/sql/lexer.cc\n"
      "exclude tests/lint/\n",
      "test");
  ASSERT_TRUE(config.ok()) << config.status().message();
  ASSERT_EQ(config->layers.size(), 2u);
  EXPECT_EQ(config->layers[0].name, "util");
  EXPECT_EQ(config->layers[0].prefix, "src/util/");
  ASSERT_EQ(config->layer_edges.size(), 1u);
  EXPECT_EQ(config->layer_edges[0].first, "core");
  EXPECT_EQ(config->layer_edges[0].second, "util");
  ASSERT_EQ(config->hot.size(), 1u);
  EXPECT_EQ(config->hot[0], "src/sql/lexer.cc");
  ASSERT_EQ(config->exclude.size(), 1u);
  EXPECT_EQ(config->exclude[0], "tests/lint/");
}

TEST(LintConfigTest, RejectsDuplicateLayerName) {
  EXPECT_FALSE(
      ParseConfig("layer util src/util/\nlayer util src/u2/\n", "test").ok());
}

TEST(LintConfigTest, RejectsEdgeNamingAnUndeclaredLayer) {
  EXPECT_FALSE(ParseConfig("layer util src/util/\nlayer-edge util ghost\n", "test").ok());
}

TEST(LintConfigTest, RejectsCyclicLayerEdges) {
  auto config = ParseConfig(
      "layer a src/a/\n"
      "layer b src/b/\n"
      "layer c src/c/\n"
      "layer-edge a b\n"
      "layer-edge b c\n"
      "layer-edge c a\n",
      "test");
  ASSERT_FALSE(config.ok());
  EXPECT_NE(config.status().message().find("cycle"), std::string::npos);
}

TEST(LintConfigTest, RejectsUnknownDirective) {
  EXPECT_FALSE(ParseConfig("frobnicate all\n", "test").ok());
}

TEST(LintConfigTest, RejectsManifestWithoutTypeName) {
  EXPECT_FALSE(ParseConfig("manifest src/util/thread_pool.h\n", "test").ok());
}

TEST(LintConfigTest, CheckedInConfigParsesAndCoversTheManifest) {
  auto config = LoadConfig(std::string(SQLOG_SOURCE_DIR) + "/tools/lint/lint_config.txt");
  ASSERT_TRUE(config.ok()) << config.status().message();
  EXPECT_FALSE(config->r1_allow.empty());
  EXPECT_GE(config->manifest.size(), 8u);
}

}  // namespace
}  // namespace sqlog::lint
