#include "log/log_stream.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "log/arena.h"
#include "log/log_io.h"
#include "log/record.h"
#include "util/csv.h"

namespace sqlog::log {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

void WriteText(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
}

LogRecord Make(uint64_t seq, int64_t t, const char* user, const char* sql) {
  LogRecord record;
  record.seq = seq;
  record.timestamp_ms = t;
  record.user = user;
  record.session = std::string(user) + "#1";
  record.statement = sql;
  record.row_count = static_cast<int64_t>(seq) * 3 - 1;
  record.truth = seq % 2 == 0 ? TruthLabel::kOrganic : TruthLabel::kDwStifle;
  return record;
}

/// Statements that exercise every CSV escape path: embedded newlines,
/// quotes, commas, CRLF, leading/trailing spaces, and empty-ish fields.
QueryLog AwkwardLog() {
  QueryLog log;
  log.Append(Make(0, 1000, "alice", "SELECT a, b FROM t WHERE s = 'x,\"y\"'"));
  log.Append(Make(1, 2000, "bob", "SELECT *\nFROM multi\nWHERE line = 1"));
  log.Append(Make(2, 3000, "", "SELECT '\"' FROM quotes"));
  log.Append(Make(3, 4000, "eve,comma", "SELECT 1\r\nFROM crlf"));
  log.Append(Make(4, 5000, "d\"q", " SELECT padded FROM spaces "));
  log.Append(Make(5, 6000, "frank", "SELECT ',' FROM t WHERE a = 'it''s'"));
  return log;
}

void ExpectSameRecords(const QueryLog& want, const std::vector<LogRecord>& got) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    const LogRecord& a = want.records()[i];
    const LogRecord& b = got[i];
    EXPECT_EQ(b.seq, a.seq) << "record " << i;
    EXPECT_EQ(b.timestamp_ms, a.timestamp_ms) << "record " << i;
    EXPECT_EQ(b.user, a.user) << "record " << i;
    EXPECT_EQ(b.session, a.session) << "record " << i;
    EXPECT_EQ(b.row_count, a.row_count) << "record " << i;
    EXPECT_EQ(b.truth, a.truth) << "record " << i;
    EXPECT_EQ(b.statement, a.statement) << "record " << i;
  }
}

TEST(LogStreamTest, WriterReaderRoundTripAtSeveralBatchSizes) {
  const QueryLog original = AwkwardLog();
  for (size_t batch_size : {size_t{1}, size_t{7}, size_t{4096}}) {
    std::string path = TempPath("log_stream_roundtrip.csv");
    LogWriter writer;
    ASSERT_TRUE(writer.Open(path).ok());
    for (const auto& record : original.records()) {
      ASSERT_TRUE(writer.Append(record).ok());
    }
    ASSERT_TRUE(writer.Close().ok());

    LogReaderOptions options;
    options.batch_size = batch_size;
    // Tiny chunks force quoted fields to straddle read boundaries.
    options.chunk_bytes = 16;
    LogReader reader(options);
    ASSERT_TRUE(reader.Open(path).ok());
    std::vector<LogRecord> all;
    std::vector<LogRecord> batch;
    while (true) {
      ASSERT_TRUE(reader.ReadBatch(&batch).ok());
      if (batch.empty()) break;
      EXPECT_LE(batch.size(), batch_size);
      for (auto& record : batch) all.push_back(std::move(record));
    }
    EXPECT_TRUE(reader.exhausted());
    EXPECT_EQ(reader.records_read(), original.size());
    ExpectSameRecords(original, all);
    std::remove(path.c_str());
  }
}

TEST(LogStreamTest, WriterBytesMatchLogIoToCsv) {
  const QueryLog original = AwkwardLog();
  std::string path = TempPath("log_stream_bytes.csv");
  LogWriter writer;
  ASSERT_TRUE(writer.Open(path).ok());
  for (const auto& record : original.records()) {
    ASSERT_TRUE(writer.Append(record).ok());
  }
  ASSERT_TRUE(writer.Close().ok());
  std::ifstream in(path, std::ios::binary);
  std::string written((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(written, LogIo::ToCsv(original));
  std::remove(path.c_str());
}

TEST(LogStreamTest, RenumberingWriterIgnoresRecordSeq) {
  std::string path = TempPath("log_stream_renumber.csv");
  LogWriterOptions options;
  options.renumber = true;
  LogWriter writer(options);
  ASSERT_TRUE(writer.Open(path).ok());
  ASSERT_TRUE(writer.Append(Make(900, 1000, "u", "SELECT 1")).ok());
  ASSERT_TRUE(writer.Append(Make(17, 2000, "u", "SELECT 2")).ok());
  ASSERT_TRUE(writer.Close().ok());
  auto loaded = LogIo::ReadFile(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ(loaded->records()[0].seq, 0u);
  EXPECT_EQ(loaded->records()[1].seq, 1u);
  std::remove(path.c_str());
}

TEST(LogStreamTest, MalformedNumericFieldsAreParseErrors) {
  struct Case {
    const char* row;
    const char* field;
  };
  const Case cases[] = {
      {"x,100,u,s,1,organic,SELECT 1", "seq"},
      {"0,10a0,u,s,1,organic,SELECT 1", "timestamp_ms"},
      {"0,100,u,s,1.5,organic,SELECT 1", "row_count"},
      {"0, 100,u,s,1,organic,SELECT 1", "timestamp_ms"},
      {"99999999999999999999999,100,u,s,1,organic,SELECT 1", "seq"},
      {"0,100,u,s,99999999999999999999999,organic,SELECT 1", "row_count"},
  };
  for (const Case& c : cases) {
    std::string path = TempPath("log_stream_badnum.csv");
    WriteText(path, std::string(c.row) + "\n");
    LogReader reader;
    ASSERT_TRUE(reader.Open(path).ok());
    LogRecord record;
    bool eof = false;
    Status status = reader.ReadRecord(&record, &eof);
    EXPECT_FALSE(status.ok()) << c.row;
    EXPECT_EQ(status.code(), StatusCode::kParseError) << c.row;
    EXPECT_NE(status.message().find(c.field), std::string::npos)
        << "'" << status.message() << "' should name " << c.field;
    EXPECT_NE(status.message().find("line 1"), std::string::npos) << status.message();
    std::remove(path.c_str());
  }
}

TEST(LogStreamTest, NegativeTimestampAndRowCountParse) {
  std::string path = TempPath("log_stream_negative.csv");
  WriteText(path, "0,-5,u,s,-1,organic,SELECT 1\n");
  LogReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  LogRecord record;
  bool eof = false;
  ASSERT_TRUE(reader.ReadRecord(&record, &eof).ok());
  EXPECT_EQ(record.timestamp_ms, -5);
  EXPECT_EQ(record.row_count, -1);
  std::remove(path.c_str());
}

TEST(LogStreamTest, TruncatedFinalQuotedFieldIsParseError) {
  std::string path = TempPath("log_stream_truncated.csv");
  WriteText(path, "0,100,u,s,1,organic,\"SELECT 1\nFROM never_closed");
  LogReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  LogRecord record;
  bool eof = false;
  Status status = reader.ReadRecord(&record, &eof);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kParseError);
  EXPECT_NE(status.message().find("truncated"), std::string::npos) << status.message();
  std::remove(path.c_str());
}

TEST(LogStreamTest, StrayHeaderMidFileIsParseError) {
  std::string path = TempPath("log_stream_strayheader.csv");
  WriteText(path,
            "seq,timestamp_ms,user,session,row_count,truth,statement\n"
            "0,100,u,s,1,organic,SELECT 1\n"
            "seq,timestamp_ms,user,session,row_count,truth,statement\n"
            "1,200,u,s,1,organic,SELECT 2\n");
  LogReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  LogRecord record;
  bool eof = false;
  ASSERT_TRUE(reader.ReadRecord(&record, &eof).ok());
  EXPECT_FALSE(eof);
  Status status = reader.ReadRecord(&record, &eof);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kParseError);
  EXPECT_NE(status.message().find("stray header"), std::string::npos)
      << status.message();
  std::remove(path.c_str());
}

TEST(LogStreamTest, HeaderInsideQuotedStatementIsData) {
  // A statement whose quoted text *contains* the header line must not
  // trip the stray-header check — only logical lines count.
  QueryLog log;
  log.Append(Make(0, 100, "u",
                  "SELECT 1\nseq,timestamp_ms,user,session,row_count,truth,statement"));
  std::string path = TempPath("log_stream_quotedheader.csv");
  ASSERT_TRUE(LogIo::WriteFile(log, path).ok());
  auto loaded = LogIo::ReadFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->records()[0].statement, log.records()[0].statement);
  std::remove(path.c_str());
}

TEST(LineSplitterTest, AnyChunkingMatchesWholeInput) {
  const std::string text =
      "plain line\n"
      "\"quoted\nwith newline\",and more\r\n"
      "crlf line\r\n"
      "\"doubled \"\" quote, and comma\"\n"
      "tail without newline";
  // Reference: feed the whole text at once.
  std::vector<std::string> want;
  {
    Csv::LineSplitter splitter;
    splitter.Feed(text);
    splitter.Finish();
    std::string line;
    while (splitter.Next(&line)) want.push_back(line);
  }
  ASSERT_EQ(want.size(), 5u);
  // Every chunk size — including 1 byte, which splits the CRLF pair and
  // the doubled quotes across feeds — must yield the same lines.
  for (size_t chunk = 1; chunk <= text.size(); ++chunk) {
    Csv::LineSplitter splitter;
    std::vector<std::string> got;
    std::string line;
    for (size_t pos = 0; pos < text.size(); pos += chunk) {
      splitter.Feed(std::string_view(text).substr(pos, chunk));
      while (splitter.Next(&line)) got.push_back(line);
    }
    splitter.Finish();
    while (splitter.Next(&line)) got.push_back(line);
    EXPECT_EQ(got, want) << "chunk size " << chunk;
    EXPECT_FALSE(splitter.truncated_in_quotes());
  }
}

TEST(LineSplitterTest, FlagsUnterminatedQuote) {
  Csv::LineSplitter splitter;
  splitter.Feed("a,\"open quote\nnever closed");
  splitter.Finish();
  std::string line;
  ASSERT_TRUE(splitter.Next(&line));
  EXPECT_TRUE(splitter.truncated_in_quotes());
}

// Regression: a final unterminated record whose last byte lands exactly
// on a Feed() chunk boundary used to be dropped — Finish() only flushed
// bytes it considered "pending", and the chunk-edge state confused that
// test. The unified Finish() emits it regardless of where chunks fell.
TEST(LineSplitterTest, FinalLineAtExactChunkBoundaryIsEmitted) {
  const std::string text = "first\nfinal";  // no trailing newline
  for (size_t chunk : {size_t{1}, size_t{5}, size_t{6}, text.size()}) {
    Csv::LineSplitter splitter;
    std::vector<std::string> got;
    std::string line;
    for (size_t pos = 0; pos < text.size(); pos += chunk) {
      splitter.Feed(std::string_view(text).substr(pos, chunk));
      while (splitter.Next(&line)) got.push_back(line);
    }
    splitter.Finish();
    while (splitter.Next(&line)) got.push_back(line);
    ASSERT_EQ(got.size(), 2u) << "chunk size " << chunk;
    EXPECT_EQ(got[0], "first");
    EXPECT_EQ(got[1], "final");
  }
}

// Regression companion: an input ending in a bare CR defers the line
// break (an LF might follow in the next chunk) — at Finish() that CR is
// a real terminator, even for an empty final line.
TEST(LineSplitterTest, TrailingCrTerminatesTheFinalLine) {
  {
    Csv::LineSplitter splitter;
    splitter.Feed("abc\r");
    splitter.Finish();
    std::string line;
    ASSERT_TRUE(splitter.Next(&line));
    EXPECT_EQ(line, "abc");
    EXPECT_FALSE(splitter.Next(&line));
  }
  {
    Csv::LineSplitter splitter;
    splitter.Feed("x\n\r");  // "x", then an empty CR-terminated line
    splitter.Finish();
    std::vector<std::string> got;
    std::string line;
    while (splitter.Next(&line)) got.push_back(line);
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0], "x");
    EXPECT_EQ(got[1], "");
  }
}

// Reader-level regression: a file whose final record has no trailing
// newline must parse at every chunk size — including the chunk sizes
// that put the record's last byte exactly at a read boundary.
TEST(LogStreamTest, FinalRecordWithoutTrailingNewlineAtEveryChunkSize) {
  QueryLog original;
  original.Append(Make(0, 1000, "alice", "SELECT a FROM t"));
  original.Append(Make(1, 2000, "bob", "SELECT b,\n\"c\" FROM u"));
  std::string csv = LogIo::ToCsv(original);
  while (!csv.empty() && csv.back() == '\n') csv.pop_back();
  const std::string path = TempPath("log_stream_no_final_newline.csv");
  WriteText(path, csv);
  for (size_t chunk = 1; chunk <= csv.size(); ++chunk) {
    LogReaderOptions options;
    options.chunk_bytes = chunk;
    LogReader reader(options);
    ASSERT_TRUE(reader.Open(path).ok()) << "chunk " << chunk;
    std::vector<LogRecord> all;
    std::vector<LogRecord> batch;
    while (true) {
      ASSERT_TRUE(reader.ReadBatch(&batch).ok()) << "chunk " << chunk;
      if (batch.empty()) break;
      for (auto& record : batch) all.push_back(std::move(record));
    }
    ExpectSameRecords(original, all);
  }
  std::remove(path.c_str());
}

TEST(StringArenaTest, InternReturnsStableDeduplicatedViews) {
  StringArena arena;
  std::string a = "hello";
  std::string_view va = arena.Intern(a);
  a = "clobbered";  // the arena copy must be independent
  std::string_view vb = arena.Intern("hello");
  EXPECT_EQ(va, "hello");
  EXPECT_EQ(va.data(), vb.data()) << "equal strings should share storage";
  EXPECT_EQ(arena.size(), 1u);
  EXPECT_EQ(arena.payload_bytes(), 5u);
}

TEST(StringArenaTest, SurvivesChunkGrowthAndOversizedStrings) {
  StringArena arena(/*chunk_bytes=*/32);
  std::vector<std::string_view> views;
  std::vector<std::string> originals;
  for (int i = 0; i < 100; ++i) {
    originals.push_back("string-" + std::to_string(i));
    views.push_back(arena.Intern(originals.back()));
  }
  // An oversized string gets its own chunk; later small interns must not
  // overwrite it (regression for the dedicated-chunk offset bug).
  std::string big(500, 'x');
  std::string_view big_view = arena.Intern(big);
  for (int i = 100; i < 200; ++i) {
    originals.push_back("string-" + std::to_string(i));
    views.push_back(arena.Intern(originals.back()));
  }
  EXPECT_EQ(big_view, big);
  for (size_t i = 0; i < views.size(); ++i) {
    EXPECT_EQ(views[i], originals[i]) << i;
  }
  EXPECT_EQ(arena.size(), 201u);
}

}  // namespace
}  // namespace sqlog::log
