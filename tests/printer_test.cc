#include "sql/printer.h"

#include <gtest/gtest.h>

#include "sql/parser.h"

namespace sqlog::sql {
namespace {

std::string Canonical(const std::string& sql) {
  auto stmt = ParseSelect(sql);
  EXPECT_TRUE(stmt.ok()) << sql << " → " << stmt.status().ToString();
  PrintOptions opts;
  return Print(*stmt.value(), opts);
}

std::string Skeleton(const std::string& sql) {
  auto stmt = ParseSelect(sql);
  EXPECT_TRUE(stmt.ok()) << sql;
  PrintOptions opts;
  opts.placeholders = true;
  return Print(*stmt.value(), opts);
}

TEST(PrinterTest, CanonicalLowercasesIdentifiers) {
  EXPECT_EQ(Canonical("SELECT ObjID FROM PhotoPrimary"),
            "select objid from photoprimary");
}

TEST(PrinterTest, CanonicalNormalizesWhitespace) {
  EXPECT_EQ(Canonical("SELECT   a ,  b   FROM  t"), "select a, b from t");
}

TEST(PrinterTest, StringLiteralsKeepCaseAndEscape) {
  EXPECT_EQ(Canonical("SELECT a FROM t WHERE s = 'It''s'"),
            "select a from t where s = 'It''s'");
}

TEST(PrinterTest, SkeletonReplacesNumbers) {
  EXPECT_EQ(Skeleton("SELECT a, b FROM t WHERE a = 0 AND b >= 3"),
            "select a, b from t where a = <num> and b >= <num>");
}

TEST(PrinterTest, SkeletonReplacesStrings) {
  EXPECT_EQ(Skeleton("SELECT a FROM t WHERE s = 'sales'"),
            "select a from t where s = <str>");
}

TEST(PrinterTest, SkeletonReplacesVariables) {
  EXPECT_EQ(Skeleton("SELECT a FROM t WHERE htmid >= @h1"),
            "select a from t where htmid >= <num>");
}

TEST(PrinterTest, SkeletonCollapsesInListArity) {
  // Def. 6 equality must not depend on IN-list length.
  EXPECT_EQ(Skeleton("SELECT a FROM t WHERE id IN (1, 2)"),
            Skeleton("SELECT a FROM t WHERE id IN (3, 4, 5, 6)"));
}

TEST(PrinterTest, EqualSkeletonsForExample8) {
  // The paper's Example 8: both queries share one skeleton.
  EXPECT_EQ(Skeleton("SELECT a, b FROM T WHERE a = 0 AND b >= 3"),
            Skeleton("SELECT a, b FROM T WHERE a = 10 AND b >= 5"));
}

TEST(PrinterTest, DifferentStructureDifferentSkeleton) {
  EXPECT_NE(Skeleton("SELECT a FROM t WHERE a = 1"),
            Skeleton("SELECT a FROM t WHERE a > 1"));
  EXPECT_NE(Skeleton("SELECT a FROM t WHERE a = 1"),
            Skeleton("SELECT b FROM t WHERE a = 1"));
}

TEST(PrinterTest, ClausePrinters) {
  auto stmt = ParseSelect("SELECT a, b FROM t1, t2 WHERE x = 1 GROUP BY a ORDER BY b DESC");
  ASSERT_TRUE(stmt.ok());
  PrintOptions opts;
  EXPECT_EQ(PrintSelectClause(*stmt.value(), opts), "select a, b");
  EXPECT_EQ(PrintFromClause(*stmt.value(), opts), "from t1, t2");
  EXPECT_EQ(PrintWhereClause(*stmt.value(), opts), "where x = 1");
  EXPECT_EQ(PrintTailClauses(*stmt.value(), opts), "group by a order by b desc");
}

TEST(PrinterTest, EmptyClausesPrintEmpty) {
  auto stmt = ParseSelect("SELECT 1");
  ASSERT_TRUE(stmt.ok());
  PrintOptions opts;
  EXPECT_EQ(PrintFromClause(*stmt.value(), opts), "");
  EXPECT_EQ(PrintWhereClause(*stmt.value(), opts), "");
  EXPECT_EQ(PrintTailClauses(*stmt.value(), opts), "");
}

TEST(PrinterTest, JoinsPrintWithExplicitForm) {
  EXPECT_EQ(Canonical("SELECT * FROM a JOIN b ON a.x = b.x"),
            "select * from a inner join b on a.x = b.x");
  EXPECT_EQ(Canonical("SELECT * FROM a LEFT JOIN b ON a.x = b.x"),
            "select * from a left outer join b on a.x = b.x");
}

TEST(PrinterTest, PrecedenceParenthesesPreserved) {
  // The OR below AND must keep its parentheses to re-parse identically.
  std::string printed = Canonical("SELECT x FROM t WHERE (a = 1 OR b = 2) AND c = 3");
  EXPECT_NE(printed.find("("), std::string::npos);
  EXPECT_EQ(Canonical(printed), printed);
}

TEST(PrinterTest, ArithmeticParenthesesPreserved) {
  std::string printed = Canonical("SELECT (a + b) * c FROM t");
  EXPECT_EQ(printed, "select (a + b) * c from t");
}

TEST(PrinterTest, TopAndDistinct) {
  EXPECT_EQ(Canonical("SELECT DISTINCT TOP 5 a FROM t"), "select distinct top 5 a from t");
}

TEST(PrinterTest, SubqueriesPrintRecursively) {
  EXPECT_EQ(Canonical("SELECT a FROM (SELECT a FROM t) x WHERE a IN (SELECT b FROM u)"),
            "select a from (select a from t) as x where a in (select b from u)");
}

TEST(PrinterTest, IsNullForms) {
  EXPECT_EQ(Canonical("SELECT a FROM t WHERE x IS NULL"),
            "select a from t where x is null");
  EXPECT_EQ(Canonical("SELECT a FROM t WHERE x IS NOT NULL"),
            "select a from t where x is not null");
}

TEST(PrinterTest, CaseExpressionPrints) {
  EXPECT_EQ(Canonical("SELECT CASE WHEN a = 1 THEN 'x' ELSE 'y' END FROM t"),
            "select case when a = 1 then 'x' else 'y' end from t");
}

TEST(PrinterTest, NonCanonicalPreservesIdentifierCase) {
  auto stmt = ParseSelect("SELECT ObjID FROM PhotoPrimary");
  ASSERT_TRUE(stmt.ok());
  PrintOptions opts;
  opts.canonical = false;
  EXPECT_EQ(Print(*stmt.value(), opts), "select ObjID from PhotoPrimary");
}

TEST(PrinterTest, IdentifiersThatCannotLexBareAreRequoted) {
  // Fuzz-found: `[Bracketed Name]` printed bare (`bracketed name`) does
  // not reparse. The canonical print must re-quote such identifiers.
  EXPECT_EQ(Canonical("SELECT [Bracketed Name] FROM [My Schema].t"),
            "select \"bracketed name\" from \"my schema\".t");
  EXPECT_EQ(Canonical("SELECT \"odd \"\"name\"\"\" FROM t"),
            "select \"odd \"\"name\"\"\" from t");
  // Bare-safe names stay unquoted even when the source quoted them.
  EXPECT_EQ(Canonical("SELECT [objID] FROM \"photoPrimary\""),
            "select objid from photoprimary");
  // And the reprint round-trips.
  for (const char* sql :
       {"SELECT [a b].*, \"c d\" AS [e f] FROM [My Schema].[T 1]",
        "SELECT t.[x y] FROM t WHERE [x y] = 1"}) {
    std::string once = Canonical(sql);
    EXPECT_EQ(Canonical(once), once) << sql;
  }
}

TEST(PrinterTest, BooleanLevelOperandsKeepTheirParens) {
  // Fuzz regression: `ra < (NOT x)` printed bare as `ra < not x`, which
  // is a parse error — NOT and the predicate forms live above comparison
  // precedence, so in additive positions they need their parens back.
  EXPECT_EQ(Canonical("SELECT a FROM t WHERE ra < (NOT 139.583221)"),
            "select a from t where ra < (not 139.583221)");
  EXPECT_EQ(Canonical("SELECT a FROM t WHERE (x LIKE 'p') = 1"),
            "select a from t where (x like 'p') = 1");
  EXPECT_EQ(Canonical("SELECT a FROM t WHERE (a AND b) BETWEEN c AND (d IS NULL)"),
            "select a from t where (a and b) between c and (d is null)");
  EXPECT_EQ(Canonical("SELECT -(NOT x) FROM t"), "select -(not x) from t");
  // Bare boolean operands under AND/OR/NOT stay bare.
  EXPECT_EQ(Canonical("SELECT a FROM t WHERE NOT x LIKE 'p' AND b IS NULL"),
            "select a from t where not x like 'p' and b is null");
  for (const char* sql :
       {"SELECT a FROM t WHERE ra < (NOT 139.583221)",
        "SELECT a FROM t WHERE (a AND b) BETWEEN c AND (d IS NULL)",
        "SELECT -(NOT x) FROM t"}) {
    std::string printed = Canonical(sql);
    auto reparsed = ParseSelect(printed);
    ASSERT_TRUE(reparsed.ok()) << printed;
    EXPECT_EQ(Print(*reparsed.value(), PrintOptions{}), printed) << sql;
  }
}

TEST(PrinterTest, VariableNamesPrintVerbatimEvenWhenDigitLed) {
  // Fuzz regression: '@112900Q3184' lexes as one variable (digits may
  // lead a variable name), but the printer quoted it as '@"112900q3184"',
  // which does not lex. Variable names must print verbatim.
  EXPECT_EQ(Canonical("SELECT a FROM t WHERE htmid >= @112900Q3184"),
            "select a from t where htmid >= @112900q3184");
  EXPECT_EQ(Canonical("SELECT a FROM t WHERE objID = @87722982781112544"),
            "select a from t where objid = @87722982781112544");
  EXPECT_EQ(Skeleton("SELECT a FROM t WHERE objID = @87722982781112544"),
            "select a from t where objid = <num>");
  for (const char* sql : {"SELECT a FROM t WHERE htmid >= @112900Q3184",
                          "SELECT a FROM t WHERE x = @h1"}) {
    std::string printed = Canonical(sql);
    auto reparsed = ParseSelect(printed);
    ASSERT_TRUE(reparsed.ok()) << printed;
    EXPECT_EQ(Print(*reparsed.value(), PrintOptions{}), printed) << sql;
  }
}

TEST(PrinterTest, DoubledUnaryMinusDoesNotPrintALineComment) {
  // Fuzz regression: `- -5` used to print as `--5`, which re-lexes as a
  // line comment and truncates the statement on reparse. Stacked signs
  // over a numeric literal now fold into one literal; signs over
  // non-literals print with protective parens.
  EXPECT_EQ(Canonical("SELECT - -5"), "select 5");
  EXPECT_EQ(Canonical("SELECT -(-5)"), "select 5");
  EXPECT_EQ(Canonical("SELECT -(1e-308)"), "select -1e-308");
  EXPECT_EQ(Canonical("SELECT - - -x FROM t"), "select -(-(-x)) from t");
  EXPECT_EQ(Canonical("SELECT + -5"), "select +-5");
  for (const char* sql : {"SELECT - -5", "SELECT - - -x FROM t", "SELECT 1 - -5"}) {
    std::string printed = Canonical(sql);
    auto reparsed = ParseSelect(printed);
    ASSERT_TRUE(reparsed.ok()) << printed;
    EXPECT_EQ(Print(*reparsed.value(), PrintOptions{}), printed) << sql;
  }
}

TEST(PrinterTest, NestedComparisonsKeepTheirParens) {
  // Fuzz regression: `objid = (a = b)` printed bare as `objid = a = b`,
  // which does not reparse — comparisons are non-associative.
  EXPECT_EQ(Canonical("SELECT x FROM t WHERE a = (b = c)"),
            "select x from t where a = (b = c)");
  EXPECT_EQ(Canonical("SELECT x FROM t WHERE (a = b) = c"),
            "select x from t where (a = b) = c");
  // Same-precedence right operands of left-associative operators too.
  EXPECT_EQ(Canonical("SELECT a - (b - c) FROM t"), "select a - (b - c) from t");
  EXPECT_EQ(Canonical("SELECT a / (b / c) FROM t"), "select a / (b / c) from t");
  // Left-associative chains stay unparenthesized.
  EXPECT_EQ(Canonical("SELECT a - b - c FROM t"), "select a - b - c from t");
  for (const char* sql :
       {"SELECT x FROM t WHERE a = (b = c)", "SELECT a - (b - c) FROM t"}) {
    std::string printed = Canonical(sql);
    auto reparsed = ParseSelect(printed);
    ASSERT_TRUE(reparsed.ok()) << printed;
    EXPECT_EQ(Print(*reparsed.value(), PrintOptions{}), printed) << sql;
  }
}

}  // namespace
}  // namespace sqlog::sql
