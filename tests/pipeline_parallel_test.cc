// Serial-vs-parallel equivalence: the parallel engine must produce
// byte-identical results to the serial path for every thread count —
// sharding keys (record ranges, user hash classes, user-id ranges) and
// merge orders are deterministic, never wall-clock dependent.

#include <gtest/gtest.h>

#include "catalog/schema.h"
#include "core/pipeline.h"
#include "log/generator.h"

namespace sqlog {
namespace {

core::PipelineResult RunWithThreads(const log::QueryLog& raw,
                                    const catalog::Schema* schema,
                                    size_t num_threads) {
  auto pipeline = core::PipelineBuilder()
                      .WithSchema(schema)
                      .NumThreads(num_threads)
                      .ExtraCleanPasses(1)
                      .Build();
  EXPECT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  auto result = pipeline->Run(raw);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

void ExpectLogsIdentical(const log::QueryLog& a, const log::QueryLog& b,
                         const char* label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (size_t i = 0; i < a.size(); ++i) {
    const auto& ra = a.records()[i];
    const auto& rb = b.records()[i];
    ASSERT_EQ(ra.statement, rb.statement) << label << " record " << i;
    ASSERT_EQ(ra.user, rb.user) << label << " record " << i;
    ASSERT_EQ(ra.timestamp_ms, rb.timestamp_ms) << label << " record " << i;
  }
}

void ExpectResultsIdentical(const core::PipelineResult& serial,
                            const core::PipelineResult& parallel) {
  // Logs at every stage.
  ExpectLogsIdentical(serial.pre_clean, parallel.pre_clean, "pre_clean");
  ExpectLogsIdentical(serial.clean_log, parallel.clean_log, "clean_log");
  ExpectLogsIdentical(serial.removal_log, parallel.removal_log, "removal_log");

  // Templates: ids, skeletons, and per-template statistics.
  ASSERT_EQ(serial.templates.size(), parallel.templates.size());
  for (uint64_t id = 0; id < serial.templates.size(); ++id) {
    const auto& ta = serial.templates.Get(id);
    const auto& tb = parallel.templates.Get(id);
    ASSERT_EQ(ta.tmpl, tb.tmpl) << "template " << id;
    ASSERT_EQ(ta.first_query, tb.first_query) << "template " << id;
    ASSERT_EQ(ta.frequency, tb.frequency) << "template " << id;
    ASSERT_EQ(ta.users, tb.users) << "template " << id;
  }

  // Parsed queries keep identical template/user assignments.
  ASSERT_EQ(serial.parsed.queries.size(), parallel.parsed.queries.size());
  for (size_t i = 0; i < serial.parsed.queries.size(); ++i) {
    ASSERT_EQ(serial.parsed.queries[i].record_index,
              parallel.parsed.queries[i].record_index) << "query " << i;
    ASSERT_EQ(serial.parsed.queries[i].template_id,
              parallel.parsed.queries[i].template_id) << "query " << i;
    ASSERT_EQ(serial.parsed.queries[i].user_id,
              parallel.parsed.queries[i].user_id) << "query " << i;
  }
  ASSERT_EQ(serial.parsed.user_streams, parallel.parsed.user_streams);

  // Mined patterns, in final sorted order.
  ASSERT_EQ(serial.patterns.size(), parallel.patterns.size());
  for (size_t i = 0; i < serial.patterns.size(); ++i) {
    ASSERT_EQ(serial.patterns[i].template_ids, parallel.patterns[i].template_ids)
        << "pattern " << i;
    ASSERT_EQ(serial.patterns[i].frequency, parallel.patterns[i].frequency)
        << "pattern " << i;
    ASSERT_EQ(serial.patterns[i].users, parallel.patterns[i].users) << "pattern " << i;
  }

  // Antipattern instances in emission order.
  ASSERT_EQ(serial.antipatterns.instances.size(), parallel.antipatterns.instances.size());
  for (size_t i = 0; i < serial.antipatterns.instances.size(); ++i) {
    const auto& ia = serial.antipatterns.instances[i];
    const auto& ib = parallel.antipatterns.instances[i];
    ASSERT_EQ(ia.type, ib.type) << "instance " << i;
    ASSERT_EQ(ia.query_indices, ib.query_indices) << "instance " << i;
    ASSERT_EQ(ia.custom_rule, ib.custom_rule) << "instance " << i;
  }
  ASSERT_EQ(serial.antipatterns.instance_of_query, parallel.antipatterns.instance_of_query);
  ASSERT_EQ(serial.antipatterns.distinct.size(), parallel.antipatterns.distinct.size());

  // Headline statistics.
  const auto& sa = serial.stats;
  const auto& sb = parallel.stats;
  EXPECT_EQ(sa.original_size, sb.original_size);
  EXPECT_EQ(sa.duplicates_removed, sb.duplicates_removed);
  EXPECT_EQ(sa.after_dedup_size, sb.after_dedup_size);
  EXPECT_EQ(sa.select_count, sb.select_count);
  EXPECT_EQ(sa.non_select_count, sb.non_select_count);
  EXPECT_EQ(sa.syntax_error_count, sb.syntax_error_count);
  EXPECT_EQ(sa.pattern_count, sb.pattern_count);
  EXPECT_EQ(sa.max_pattern_frequency, sb.max_pattern_frequency);
  EXPECT_EQ(sa.distinct_dw, sb.distinct_dw);
  EXPECT_EQ(sa.queries_dw, sb.queries_dw);
  EXPECT_EQ(sa.distinct_ds, sb.distinct_ds);
  EXPECT_EQ(sa.queries_ds, sb.queries_ds);
  EXPECT_EQ(sa.distinct_df, sb.distinct_df);
  EXPECT_EQ(sa.queries_df, sb.queries_df);
  EXPECT_EQ(sa.distinct_cth, sb.distinct_cth);
  EXPECT_EQ(sa.queries_cth, sb.queries_cth);
  EXPECT_EQ(sa.distinct_snc, sb.distinct_snc);
  EXPECT_EQ(sa.queries_snc, sb.queries_snc);
  EXPECT_EQ(sa.final_size, sb.final_size);
  EXPECT_EQ(sa.removal_size, sb.removal_size);

  // Parse diagnostics (samples are taken in record order, so they are
  // identical too, not merely equinumerous).
  ASSERT_EQ(sa.parse_diagnostics.size(), sb.parse_diagnostics.size());
  for (size_t i = 0; i < sa.parse_diagnostics.size(); ++i) {
    EXPECT_EQ(sa.parse_diagnostics[i].record_index,
              sb.parse_diagnostics[i].record_index);
    EXPECT_EQ(sa.parse_diagnostics[i].message, sb.parse_diagnostics[i].message);
  }

  // SWS coverage.
  ASSERT_EQ(serial.sws.patterns.size(), parallel.sws.patterns.size());
  for (size_t i = 0; i < serial.sws.patterns.size(); ++i) {
    EXPECT_EQ(serial.sws.patterns[i].pattern_index,
              parallel.sws.patterns[i].pattern_index);
  }
  EXPECT_EQ(serial.sws.covered_queries, parallel.sws.covered_queries);
  EXPECT_EQ(serial.sws.coverage, parallel.sws.coverage);
}

class PipelineParallelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    log::GeneratorConfig config;
    config.seed = 99;
    config.target_statements = 12000;
    config.cth_families = 10;
    raw_ = new log::QueryLog(log::GenerateLog(config));
    schema_ = new catalog::Schema(catalog::MakeSkyServerSchema());
    serial_ = new core::PipelineResult(RunWithThreads(*raw_, schema_, 1));
  }

  static void TearDownTestSuite() {
    delete serial_;
    delete schema_;
    delete raw_;
    serial_ = nullptr;
    schema_ = nullptr;
    raw_ = nullptr;
  }

  static log::QueryLog* raw_;
  static catalog::Schema* schema_;
  static core::PipelineResult* serial_;
};

log::QueryLog* PipelineParallelTest::raw_ = nullptr;
catalog::Schema* PipelineParallelTest::schema_ = nullptr;
core::PipelineResult* PipelineParallelTest::serial_ = nullptr;

TEST_F(PipelineParallelTest, TwoThreadsMatchSerial) {
  core::PipelineResult parallel = RunWithThreads(*raw_, schema_, 2);
  ExpectResultsIdentical(*serial_, parallel);
}

TEST_F(PipelineParallelTest, EightThreadsMatchSerial) {
  core::PipelineResult parallel = RunWithThreads(*raw_, schema_, 8);
  ExpectResultsIdentical(*serial_, parallel);
}

TEST_F(PipelineParallelTest, HardwareWidthMatchesSerial) {
  core::PipelineResult parallel = RunWithThreads(*raw_, schema_, 0);
  ExpectResultsIdentical(*serial_, parallel);
}

TEST_F(PipelineParallelTest, ReducedInputModeAlsoMatches) {
  // Sec. 6.8 mode: all records collapse onto the anonymous user — the
  // worst case for user-sharded stages (one giant stream).
  auto run = [&](size_t threads) {
    auto pipeline = core::PipelineBuilder()
                        .WithSchema(schema_)
                        .UseUserMetadata(false)
                        .NumThreads(threads)
                        .Build();
    EXPECT_TRUE(pipeline.ok()) << pipeline.status().ToString();
    return std::move(pipeline->Run(*raw_)).value();
  };
  core::PipelineResult serial = run(1);
  core::PipelineResult parallel = run(4);
  ExpectResultsIdentical(serial, parallel);
}

}  // namespace
}  // namespace sqlog
