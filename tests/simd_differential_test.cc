// Differential tests for the runtime-dispatched byte kernels
// (util/simd.h): every fuzz-corpus entry and a 100k-statement generator
// log run through the lexer, the fingerprint hash, and the CSV line
// splitter once with the scalar twins forced and once per accelerated
// level — token streams, fingerprints, and split lines must be
// byte-identical. The raw kernel primitives (skip/find/lower/hash) are
// additionally swept position-by-position so a lane-boundary bug cannot
// hide behind higher-layer slack.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "log/generator.h"
#include "sql/fingerprint.h"
#include "sql/lexer.h"
#include "util/csv.h"
#include "util/simd.h"

#ifndef SQLOG_FUZZ_CORPUS_DIR
#error "SQLOG_FUZZ_CORPUS_DIR must point at fuzz/corpus"
#endif

namespace sqlog {
namespace {

namespace fs = std::filesystem;

std::vector<std::pair<std::string, std::string>> LoadCorpusBlobs() {
  std::vector<std::pair<std::string, std::string>> blobs;  // label, bytes
  const fs::path root(SQLOG_FUZZ_CORPUS_DIR);
  for (const auto& file : fs::recursive_directory_iterator(root)) {
    if (!file.is_regular_file()) continue;
    std::ifstream in(file.path(), std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    blobs.emplace_back(file.path().lexically_relative(root).string(), std::move(bytes));
  }
  return blobs;
}

/// Accelerated levels this build/host can actually run (scalar excluded:
/// it is the reference side of every comparison).
std::vector<simd::Level> AcceleratedLevels() {
  std::vector<simd::Level> levels;
  for (simd::Level level : {simd::Level::kSwar, simd::Level::kSse2}) {
    if (level <= simd::BestSupportedLevel()) levels.push_back(level);
  }
  return levels;
}

/// RAII force of one kernel level for a differential leg.
class ScopedLevel {
 public:
  explicit ScopedLevel(simd::Level level) { simd::ForceLevelForTest(level); }
  ~ScopedLevel() { simd::ResetLevelForTest(); }
};

struct LexOutcome {
  bool ok = false;
  std::string error;
  std::vector<sql::TokenType> types;
  std::vector<std::string> texts;
  std::vector<size_t> offsets;
  std::vector<size_t> ends;
};

LexOutcome LexNow(std::string_view statement) {
  LexOutcome out;
  auto result = sql::Lex(statement);
  out.ok = result.ok();
  if (!out.ok) {
    out.error = result.status().ToString();
    return out;
  }
  const sql::TokenStream& tokens = result.value();
  for (size_t i = 0; i < tokens.size(); ++i) {
    out.types.push_back(tokens[i].type);
    out.texts.emplace_back(tokens[i].text);
    out.offsets.push_back(tokens[i].offset);
    out.ends.push_back(tokens[i].end);
  }
  return out;
}

std::string FingerprintNow(std::string_view statement) {
  auto result = sql::Lex(statement);
  if (!result.ok()) return "<lex-error>";
  std::string key;
  sql::AppendNormalizedKey(result.value(), &key);
  sql::TokenFingerprint fp = sql::FingerprintKey(key);
  return key + "|" + std::to_string(fp.lo) + ":" + std::to_string(fp.hi);
}

std::vector<std::string> SplitNow(std::string_view content, size_t chunk) {
  Csv::LineSplitter splitter;
  std::vector<std::string> lines;
  std::string line;
  for (size_t i = 0; i < content.size(); i += chunk) {
    splitter.Feed(content.substr(i, chunk));
    while (splitter.Next(&line)) lines.push_back(line);
  }
  splitter.Finish();
  while (splitter.Next(&line)) lines.push_back(line);
  return lines;
}

/// Position sweep of the raw kernels over one blob: each result must
/// equal the scalar-forced result from the same start index. Dense for
/// small blobs, strided past 4 KiB to bound runtime.
void SweepPrimitives(const std::string& label, const std::string& bytes,
                     simd::Level level) {
  const size_t stride = bytes.size() <= 4096 ? 1 : 97;
  std::string scalar_lower;
  std::string level_lower;
  // Whole-text bitmaps: the scalar-built and level-built words must be
  // identical, and the ClassIndex bit scans must agree with the scalar
  // Skip* kernels at every swept position (checked inside the loop).
  const size_t bitmap_words = (bytes.size() + 63) / 64;
  std::vector<uint64_t> scalar_space_bits(bitmap_words + 1, 0);
  std::vector<uint64_t> scalar_ident_bits(bitmap_words + 1, 0);
  std::vector<uint64_t> level_space_bits(bitmap_words + 1, 0);
  std::vector<uint64_t> level_ident_bits(bitmap_words + 1, 0);
  simd::ClassIndex level_index;
  {
    ScopedLevel force(simd::Level::kScalar);
    simd::BuildClassBitmaps(bytes, scalar_space_bits.data(),
                            scalar_ident_bits.data());
  }
  {
    ScopedLevel force(level);
    simd::BuildClassBitmaps(bytes, level_space_bits.data(),
                            level_ident_bits.data());
    level_index.Build(bytes);
  }
  EXPECT_EQ(scalar_space_bits, level_space_bits)
      << label << " space bitmap, level " << simd::LevelName(level);
  EXPECT_EQ(scalar_ident_bits, level_ident_bits)
      << label << " ident bitmap, level " << simd::LevelName(level);
  for (size_t i = 0; i <= bytes.size(); i += stride) {
    size_t scalar_space, scalar_ident, scalar_nl, scalar_special;
    simd::Hash128 scalar_hash;
    {
      ScopedLevel force(simd::Level::kScalar);
      scalar_space = simd::SkipSpace(bytes, i);
      scalar_ident = simd::SkipIdentRun(bytes, i);
      scalar_nl = simd::FindByte(bytes, i, '\n');
      scalar_special = simd::FindLineSpecial(bytes, i);
      scalar_hash = simd::HashKey128(std::string_view(bytes).substr(i));
      scalar_lower.clear();
      simd::AppendLowered(std::string_view(bytes).substr(i), &scalar_lower);
    }
    ScopedLevel force(level);
    EXPECT_EQ(scalar_space, simd::SkipSpace(bytes, i))
        << label << " SkipSpace@" << i << " level " << simd::LevelName(level);
    EXPECT_EQ(scalar_ident, simd::SkipIdentRun(bytes, i))
        << label << " SkipIdentRun@" << i << " level " << simd::LevelName(level);
    EXPECT_EQ(scalar_nl, simd::FindByte(bytes, i, '\n'))
        << label << " FindByte@" << i << " level " << simd::LevelName(level);
    EXPECT_EQ(scalar_special, simd::FindLineSpecial(bytes, i))
        << label << " FindLineSpecial@" << i << " level " << simd::LevelName(level);
    EXPECT_EQ(scalar_space, level_index.SkipSpace(i))
        << label << " ClassIndex::SkipSpace@" << i << " level "
        << simd::LevelName(level);
    EXPECT_EQ(scalar_ident, level_index.SkipIdentRun(i))
        << label << " ClassIndex::SkipIdentRun@" << i << " level "
        << simd::LevelName(level);
    simd::Hash128 level_hash = simd::HashKey128(std::string_view(bytes).substr(i));
    EXPECT_TRUE(scalar_hash.lo == level_hash.lo && scalar_hash.hi == level_hash.hi)
        << label << " HashKey128@" << i << " level " << simd::LevelName(level);
    level_lower.clear();
    simd::AppendLowered(std::string_view(bytes).substr(i), &level_lower);
    EXPECT_EQ(scalar_lower, level_lower)
        << label << " AppendLowered@" << i << " level " << simd::LevelName(level);
  }
}

TEST(SimdDifferentialTest, PrimitivesMatchScalarOnCorpus) {
  const auto blobs = LoadCorpusBlobs();
  ASSERT_FALSE(blobs.empty());
  for (simd::Level level : AcceleratedLevels()) {
    for (const auto& [label, bytes] : blobs) SweepPrimitives(label, bytes, level);
  }
}

TEST(SimdDifferentialTest, PrimitivesMatchScalarAroundLaneBoundaries) {
  // Synthetic worst cases a corpus may miss: runs that start/end at
  // every offset within two 16-byte lanes, with high-bit bytes adjacent
  // (the SWAR masks must not carry across lanes or sign-extend).
  std::vector<std::string> blobs;
  for (size_t pad = 0; pad < 18; ++pad) {
    std::string s(pad, 'x');
    s += "  \t\r\n\v\f  ";
    s += std::string(pad, ' ');
    s += "\x80\xff\x7f";
    s += "ident_run$#123,\"q\"\r\n";
    s += std::string(17 - pad, 'Z');
    blobs.push_back(s);
  }
  std::string all;
  for (int c = 0; c < 256; ++c) all.push_back(static_cast<char>(c));
  blobs.push_back(all);
  for (simd::Level level : AcceleratedLevels()) {
    for (size_t b = 0; b < blobs.size(); ++b) {
      SweepPrimitives("synthetic-" + std::to_string(b), blobs[b], level);
    }
  }
}

TEST(SimdDifferentialTest, LexAndFingerprintMatchScalarOnCorpus) {
  const auto blobs = LoadCorpusBlobs();
  ASSERT_FALSE(blobs.empty());
  for (const auto& [label, bytes] : blobs) {
    LexOutcome scalar_lex;
    std::string scalar_fp;
    {
      ScopedLevel force(simd::Level::kScalar);
      scalar_lex = LexNow(bytes);
      scalar_fp = FingerprintNow(bytes);
    }
    for (simd::Level level : AcceleratedLevels()) {
      ScopedLevel force(level);
      LexOutcome lex = LexNow(bytes);
      EXPECT_EQ(scalar_lex.ok, lex.ok) << label;
      EXPECT_EQ(scalar_lex.error, lex.error) << label;
      EXPECT_EQ(scalar_lex.types, lex.types) << label;
      EXPECT_EQ(scalar_lex.texts, lex.texts) << label;
      EXPECT_EQ(scalar_lex.offsets, lex.offsets) << label;
      EXPECT_EQ(scalar_lex.ends, lex.ends) << label;
      EXPECT_EQ(scalar_fp, FingerprintNow(bytes)) << label;
    }
  }
}

TEST(SimdDifferentialTest, CsvSplitMatchesScalarOnCorpus) {
  const auto blobs = LoadCorpusBlobs();
  ASSERT_FALSE(blobs.empty());
  for (const auto& [label, bytes] : blobs) {
    std::vector<std::string> scalar_lines;
    {
      ScopedLevel force(simd::Level::kScalar);
      scalar_lines = SplitNow(bytes, 7);
    }
    EXPECT_EQ(scalar_lines, Csv::SplitLogicalLines(bytes)) << label;
    for (simd::Level level : AcceleratedLevels()) {
      ScopedLevel force(level);
      for (size_t chunk : {size_t{1}, size_t{7}, size_t{4096}}) {
        EXPECT_EQ(scalar_lines, SplitNow(bytes, chunk))
            << label << " chunk " << chunk << " level " << simd::LevelName(level);
      }
    }
  }
}

TEST(SimdDifferentialTest, GeneratorLogMatchesScalarAtEveryLevel) {
  log::GeneratorConfig config;
  config.target_statements = 100000;
  const log::QueryLog log = log::GenerateLog(config);
  ASSERT_GE(log.size(), 100000u);

  // Scalar reference pass over every statement, then one pass per level.
  std::vector<std::string> scalar_fps;
  scalar_fps.reserve(log.size());
  std::string csv;
  {
    ScopedLevel force(simd::Level::kScalar);
    for (const auto& record : log.records()) {
      scalar_fps.push_back(FingerprintNow(record.statement));
    }
  }
  for (const auto& record : log.records()) {
    csv += Csv::JoinLine({std::to_string(record.seq), record.user, record.statement});
    csv += '\n';
  }
  std::vector<std::string> scalar_lines;
  {
    ScopedLevel force(simd::Level::kScalar);
    scalar_lines = SplitNow(csv, 64 * 1024);
  }

  for (simd::Level level : AcceleratedLevels()) {
    ScopedLevel force(level);
    for (size_t i = 0; i < log.size(); ++i) {
      ASSERT_EQ(scalar_fps[i], FingerprintNow(log.records()[i].statement))
          << "record " << i << " level " << simd::LevelName(level);
    }
    ASSERT_EQ(scalar_lines, SplitNow(csv, 64 * 1024))
        << "level " << simd::LevelName(level);
  }
}

}  // namespace
}  // namespace sqlog
