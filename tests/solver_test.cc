#include "core/solver.h"

#include <gtest/gtest.h>

#include "catalog/schema.h"
#include "core/antipattern.h"
#include "util/string_util.h"

namespace sqlog::core {
namespace {

std::vector<ParsedQuery> ParseAll(const std::vector<std::string>& sqls) {
  std::vector<ParsedQuery> parsed(sqls.size());
  for (size_t i = 0; i < sqls.size(); ++i) {
    auto facts = sql::ParseAndAnalyze(sqls[i]);
    EXPECT_TRUE(facts.ok()) << sqls[i];
    parsed[i].facts = std::move(facts.value());
  }
  return parsed;
}

std::vector<const ParsedQuery*> Pointers(const std::vector<ParsedQuery>& parsed) {
  std::vector<const ParsedQuery*> out;
  for (const auto& query : parsed) out.push_back(&query);
  return out;
}

TEST(SolverTest, DwRewriteMatchesExample10) {
  auto parsed = ParseAll({
      "SELECT name FROM Employee WHERE empId = 8",
      "SELECT name FROM Employee WHERE empId = 1",
  });
  auto rewritten = RewriteDwStifle(Pointers(parsed));
  ASSERT_TRUE(rewritten.ok()) << rewritten.status().ToString();
  EXPECT_EQ(rewritten.value(), "select empid, name from employee where empid in (8, 1)");
}

TEST(SolverTest, DwRewriteDoesNotDuplicateExposedColumn) {
  auto parsed = ParseAll({
      "SELECT empId, name FROM Employee WHERE empId = 8",
      "SELECT empId, name FROM Employee WHERE empId = 1",
  });
  auto rewritten = RewriteDwStifle(Pointers(parsed));
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ(rewritten.value(), "select empid, name from employee where empid in (8, 1)");
}

TEST(SolverTest, DwRewriteDeduplicatesValues) {
  auto parsed = ParseAll({
      "SELECT name FROM Employee WHERE empId = 8",
      "SELECT name FROM Employee WHERE empId = 1",
      "SELECT name FROM Employee WHERE empId = 8",
  });
  auto rewritten = RewriteDwStifle(Pointers(parsed));
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ(rewritten.value(), "select empid, name from employee where empid in (8, 1)");
}

TEST(SolverTest, DwRewriteWithStringConstants) {
  auto parsed = ParseAll({
      "SELECT rank FROM DBObjects WHERE name = 'Galaxy'",
      "SELECT rank FROM DBObjects WHERE name = 'Star'",
  });
  auto rewritten = RewriteDwStifle(Pointers(parsed));
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ(rewritten.value(),
            "select name, rank from dbobjects where name in ('Galaxy', 'Star')");
}

TEST(SolverTest, DwRewritePreservesQualifier) {
  auto parsed = ParseAll({
      "SELECT E.name FROM Employee E WHERE E.empId = 8",
      "SELECT E.name FROM Employee E WHERE E.empId = 1",
  });
  auto rewritten = RewriteDwStifle(Pointers(parsed));
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ(rewritten.value(),
            "select e.empid, e.name from employee as e where e.empid in (8, 1)");
}

TEST(SolverTest, DwRewriteNeedsTwoQueries) {
  auto parsed = ParseAll({"SELECT name FROM Employee WHERE empId = 8"});
  EXPECT_FALSE(RewriteDwStifle(Pointers(parsed)).ok());
}

TEST(SolverTest, DsRewriteMatchesExample12) {
  auto parsed = ParseAll({
      "SELECT name FROM Employee WHERE empId = 8",
      "SELECT address, phone FROM Employee WHERE empId = 8",
  });
  auto rewritten = RewriteDsStifle(Pointers(parsed));
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ(rewritten.value(),
            "select name, address, phone from employee where empid = 8");
}

TEST(SolverTest, DsRewriteDeduplicatesSelectItems) {
  auto parsed = ParseAll({
      "SELECT name, phone FROM Employee WHERE empId = 8",
      "SELECT phone, address FROM Employee WHERE empId = 8",
  });
  auto rewritten = RewriteDsStifle(Pointers(parsed));
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ(rewritten.value(),
            "select name, phone, address from employee where empid = 8");
}

TEST(SolverTest, DfRewriteMatchesExample14) {
  auto parsed = ParseAll({
      "SELECT name FROM Employee WHERE empId = 8",
      "SELECT address FROM EmployeeInfo WHERE empId = 8",
  });
  auto rewritten = RewriteDfStifle(Pointers(parsed));
  ASSERT_TRUE(rewritten.ok()) << rewritten.status().ToString();
  EXPECT_EQ(rewritten.value(),
            "select employee.name, employeeinfo.address from employee as employee "
            "inner join employeeinfo as employeeinfo "
            "on employee.empid = employeeinfo.empid where employee.empid = 8");
}

TEST(SolverTest, DfRewriteKeepsExistingAliases) {
  auto parsed = ParseAll({
      "SELECT E.name FROM Employee E WHERE E.empId = 8",
      "SELECT EI.address FROM EmployeeInfo EI WHERE EI.empId = 8",
  });
  auto rewritten = RewriteDfStifle(Pointers(parsed));
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ(rewritten.value(),
            "select e.name, ei.address from employee as e inner join employeeinfo as ei "
            "on e.empid = ei.empid where e.empid = 8");
}

TEST(SolverTest, DfRewriteRejectsJoinMembers) {
  auto parsed = ParseAll({
      "SELECT a.name FROM Employee a JOIN EmployeeInfo b ON a.empId = b.empId "
      "WHERE a.empId = 8",
      "SELECT address FROM EmployeeInfo WHERE empId = 8",
  });
  auto rewritten = RewriteDfStifle(Pointers(parsed));
  EXPECT_FALSE(rewritten.ok());
  EXPECT_EQ(rewritten.status().code(), StatusCode::kUnsupported);
}

TEST(SolverTest, SncRewriteEquality) {
  auto parsed = ParseAll({"SELECT * FROM Bugs WHERE assigned_to = NULL"});
  auto rewritten = RewriteSnc(parsed[0]);
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ(rewritten.value(), "select * from bugs where assigned_to is null");
}

TEST(SolverTest, SncRewriteInequality) {
  auto parsed = ParseAll({"SELECT * FROM Bugs WHERE assigned_to <> NULL"});
  auto rewritten = RewriteSnc(parsed[0]);
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ(rewritten.value(), "select * from bugs where assigned_to is not null");
}

TEST(SolverTest, SncRewriteInsideConjunction) {
  auto parsed = ParseAll({
      "SELECT * FROM Bugs WHERE status = 'open' AND assigned_to = NULL"});
  auto rewritten = RewriteSnc(parsed[0]);
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ(rewritten.value(),
            "select * from bugs where status = 'open' and assigned_to is null");
}

TEST(SolverTest, SncRewriteNullOnLeft) {
  auto parsed = ParseAll({"SELECT * FROM Bugs WHERE NULL = assigned_to"});
  auto rewritten = RewriteSnc(parsed[0]);
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ(rewritten.value(), "select * from bugs where assigned_to is null");
}

// --- end-to-end solving over a small log -----------------------------------

class SolveLogTest : public ::testing::Test {
 protected:
  SolveOutcome Solve(const std::vector<std::pair<int64_t, std::string>>& statements) {
    log_ = log::QueryLog();
    for (const auto& [t, sql] : statements) {
      log::LogRecord record;
      record.user = "u";
      record.timestamp_ms = t;
      record.statement = sql;
      log_.Append(record);
    }
    log_.Renumber();
    store_ = TemplateStore();
    parsed_ = ParseLog(log_, store_);
    schema_ = catalog::MakeSkyServerSchema();
    DetectorOptions options;
    options.cth_min_support = 1;
    report_ = DetectAntipatterns(parsed_, store_, &schema_, options);
    return SolveAntipatterns(log_, parsed_, report_);
  }

  log::QueryLog log_;
  TemplateStore store_;
  ParsedLog parsed_;
  catalog::Schema schema_;
  AntipatternReport report_;
};

TEST_F(SolveLogTest, MergesDwRunAtFirstPosition) {
  SolveOutcome outcome = Solve({
      {0, "SELECT count(*) FROM photoPrimary WHERE htmid >= 1 and htmid <= 2"},
      {1000, "SELECT name FROM Employee WHERE empId = 8"},
      {2000, "SELECT name FROM Employee WHERE empId = 1"},
      {3000, "SELECT count(*) FROM photoPrimary WHERE htmid >= 3 and htmid <= 4"},
  });
  ASSERT_EQ(outcome.clean_log.size(), 3u);
  EXPECT_EQ(outcome.clean_log.records()[1].statement,
            "select empid, name from employee where empid in (8, 1)");
  // Timestamp and user of the first member are kept.
  EXPECT_EQ(outcome.clean_log.records()[1].timestamp_ms, 1000);
  EXPECT_EQ(outcome.stats.instances_solved, 1u);
  EXPECT_EQ(outcome.stats.queries_merged, 1u);
  // Removal log drops both members.
  EXPECT_EQ(outcome.removal_log.size(), 2u);
}

TEST_F(SolveLogTest, SncRewrittenInPlace) {
  SolveOutcome outcome = Solve({
      {0, "SELECT * FROM Bugs WHERE assigned_to = NULL"},
  });
  ASSERT_EQ(outcome.clean_log.size(), 1u);
  EXPECT_EQ(outcome.clean_log.records()[0].statement,
            "select * from bugs where assigned_to is null");
  EXPECT_EQ(outcome.stats.queries_rewritten_in_place, 1u);
}

TEST_F(SolveLogTest, CthKeptInCleanDroppedFromRemoval) {
  SolveOutcome outcome = Solve({
      {0, "SELECT * FROM dbo.fGetNearestObjEq(1.0, 2.0, 0.1)"},
      {100, "SELECT plate FROM SpecObjAll WHERE SpecObjID = 123"},
  });
  EXPECT_EQ(outcome.clean_log.size(), 2u);   // unsolvable, kept verbatim
  EXPECT_EQ(outcome.removal_log.size(), 0u);  // antipattern members dropped
  EXPECT_EQ(outcome.stats.instances_unsolvable, 1u);
}

TEST_F(SolveLogTest, NonSelectAndBrokenStatementsAreDropped) {
  SolveOutcome outcome = Solve({
      {0, "INSERT INTO t VALUES (1)"},
      {1000, "SELECT broken FROM"},
      {2000, "SELECT name FROM Employee WHERE empId = 8"},
  });
  ASSERT_EQ(outcome.clean_log.size(), 1u);
  EXPECT_EQ(outcome.clean_log.records()[0].timestamp_ms, 2000);
}

TEST_F(SolveLogTest, PassThroughLogIsUntouched) {
  SolveOutcome outcome = Solve({
      {0, "SELECT count(*) FROM photoPrimary WHERE htmid >= 1 and htmid <= 2"},
      {100000000, "SELECT count(*) FROM photoPrimary WHERE htmid >= 9 and htmid <= 10"},
  });
  EXPECT_EQ(outcome.clean_log.size(), 2u);
  EXPECT_EQ(outcome.removal_log.size(), 2u);
  EXPECT_EQ(outcome.stats.instances_solved, 0u);
  EXPECT_EQ(outcome.clean_log.records()[0].statement,
            "SELECT count(*) FROM photoPrimary WHERE htmid >= 1 and htmid <= 2");
}

TEST_F(SolveLogTest, Table3ReproducesPaperExample16) {
  // Table 2 → Table 3: the DW run inside a CTH collapses to an IN query;
  // the head stays.
  SolveOutcome outcome = Solve({
      {0, "SELECT E.Id FROM Employees E WHERE E.department = 'sales'"},
      {1000, "SELECT E.name, E.surname FROM Employees E WHERE E.id = 12"},
      {2000, "SELECT E.name, E.surname FROM Employees E WHERE E.id = 15"},
      {3000, "SELECT E.name, E.surname FROM Employees E WHERE E.id = 16"},
  });
  ASSERT_EQ(outcome.clean_log.size(), 2u);
  EXPECT_EQ(outcome.clean_log.records()[0].statement,
            "SELECT E.Id FROM Employees E WHERE E.department = 'sales'");
  EXPECT_EQ(outcome.clean_log.records()[1].statement,
            "select e.id, e.name, e.surname from employees as e where e.id in (12, 15, 16)");
}

}  // namespace
}  // namespace sqlog::core
