#include "sql/skeleton.h"

#include <gtest/gtest.h>

#include "util/string_util.h"

namespace sqlog::sql {
namespace {

QueryFacts MustAnalyze(const std::string& sql) {
  auto facts = ParseAndAnalyze(sql);
  EXPECT_TRUE(facts.ok()) << sql << " → " << facts.status().ToString();
  return facts.ok() ? std::move(facts.value()) : QueryFacts{};
}

TEST(SkeletonTest, TemplateTripleOfExample8) {
  QueryFacts facts = MustAnalyze("SELECT a, b FROM T WHERE a = 0 AND b >= 3");
  EXPECT_EQ(facts.tmpl.ssc, "select a, b");
  EXPECT_EQ(facts.tmpl.sfc, "from t");
  EXPECT_EQ(facts.tmpl.swc, "where a = <num> and b >= <num>");
  EXPECT_EQ(facts.tmpl.tail, "");
}

TEST(SkeletonTest, EqualQueriesShareFingerprint) {
  QueryFacts a = MustAnalyze("SELECT a, b FROM T WHERE a = 0 AND b >= 3");
  QueryFacts b = MustAnalyze("select A, B from t where A = 10 and B >= 5");
  EXPECT_EQ(a.tmpl, b.tmpl);
  EXPECT_EQ(a.tmpl.fingerprint, b.tmpl.fingerprint);
}

TEST(SkeletonTest, DifferentTailMakesDifferentTemplate) {
  QueryFacts a = MustAnalyze("SELECT a FROM t WHERE x = 1");
  QueryFacts b = MustAnalyze("SELECT a FROM t WHERE x = 1 ORDER BY a");
  EXPECT_FALSE(a.tmpl == b.tmpl);
}

TEST(SkeletonTest, ConcreteClausesKeepConstants) {
  QueryFacts facts = MustAnalyze("SELECT name FROM Employee WHERE empId = 8");
  EXPECT_EQ(facts.sc, "select name");
  EXPECT_EQ(facts.fc, "from employee");
  EXPECT_EQ(facts.wc, "where empid = 8");
}

TEST(SkeletonTest, SingleEqualityPredicateExtraction) {
  QueryFacts facts = MustAnalyze("SELECT name FROM Employee WHERE empId = 8");
  ASSERT_EQ(facts.predicate_count(), 1);
  const Predicate& pred = facts.predicates[0];
  EXPECT_EQ(pred.op, PredicateOp::kEq);
  EXPECT_EQ(pred.column, "empid");
  EXPECT_TRUE(pred.constant_comparison);
  ASSERT_EQ(pred.values.size(), 1u);
  EXPECT_EQ(pred.values[0], "8");
  EXPECT_TRUE(facts.where_conjunctive);
}

TEST(SkeletonTest, ReversedComparisonIsMirrored) {
  QueryFacts facts = MustAnalyze("SELECT a FROM t WHERE 5 < r");
  ASSERT_EQ(facts.predicate_count(), 1);
  EXPECT_EQ(facts.predicates[0].op, PredicateOp::kGreater);
  EXPECT_EQ(facts.predicates[0].column, "r");
}

TEST(SkeletonTest, ConjunctionCountsPredicates) {
  QueryFacts facts =
      MustAnalyze("SELECT a FROM t WHERE x = 1 AND y > 2 AND z BETWEEN 3 AND 4");
  EXPECT_EQ(facts.predicate_count(), 3);
  EXPECT_TRUE(facts.where_conjunctive);
}

TEST(SkeletonTest, OrMakesNonConjunctive) {
  QueryFacts facts = MustAnalyze("SELECT a FROM t WHERE x = 1 OR y = 2");
  EXPECT_EQ(facts.predicate_count(), 2);
  EXPECT_FALSE(facts.where_conjunctive);
}

TEST(SkeletonTest, NotMakesNonConjunctive) {
  QueryFacts facts = MustAnalyze("SELECT a FROM t WHERE NOT x = 1");
  EXPECT_FALSE(facts.where_conjunctive);
}

TEST(SkeletonTest, BetweenCapturesBothBounds) {
  QueryFacts facts = MustAnalyze("SELECT a FROM t WHERE r BETWEEN 14 AND 17");
  ASSERT_EQ(facts.predicate_count(), 1);
  const Predicate& pred = facts.predicates[0];
  EXPECT_EQ(pred.op, PredicateOp::kBetween);
  EXPECT_EQ(pred.values, (std::vector<std::string>{"14", "17"}));
}

TEST(SkeletonTest, InListCapturesAllValues) {
  QueryFacts facts = MustAnalyze("SELECT a FROM t WHERE id IN (8, 1, 5)");
  ASSERT_EQ(facts.predicate_count(), 1);
  EXPECT_EQ(facts.predicates[0].op, PredicateOp::kIn);
  EXPECT_EQ(facts.predicates[0].values, (std::vector<std::string>{"8", "1", "5"}));
}

TEST(SkeletonTest, NullComparisonIsFlagged) {
  QueryFacts eq = MustAnalyze("SELECT * FROM Bugs WHERE assigned_to = NULL");
  ASSERT_EQ(eq.predicate_count(), 1);
  EXPECT_TRUE(eq.predicates[0].compares_to_null_literal);

  QueryFacts neq = MustAnalyze("SELECT * FROM Bugs WHERE assigned_to <> NULL");
  EXPECT_TRUE(neq.predicates[0].compares_to_null_literal);

  QueryFacts is_null = MustAnalyze("SELECT * FROM Bugs WHERE assigned_to IS NULL");
  EXPECT_EQ(is_null.predicates[0].op, PredicateOp::kIsNull);
  EXPECT_FALSE(is_null.predicates[0].compares_to_null_literal);
}

TEST(SkeletonTest, ColumnToColumnComparisonIsNotConstant) {
  QueryFacts facts = MustAnalyze("SELECT a FROM t, u WHERE t.id = u.id");
  ASSERT_EQ(facts.predicate_count(), 1);
  EXPECT_FALSE(facts.predicates[0].constant_comparison);
}

TEST(SkeletonTest, VariableComparisonIsConstant) {
  // Log variables stand in for constants (Sec. 4.1.2).
  QueryFacts facts = MustAnalyze("SELECT a FROM t WHERE htmid >= @h1");
  ASSERT_EQ(facts.predicate_count(), 1);
  EXPECT_TRUE(facts.predicates[0].constant_comparison);
}

TEST(SkeletonTest, SelectedColumnsUnqualifiedAndLowercased) {
  QueryFacts facts = MustAnalyze("SELECT E.Name, E.SurName FROM Employees E WHERE E.id = 1");
  EXPECT_EQ(facts.selected_columns, (std::vector<std::string>{"name", "surname"}));
  EXPECT_FALSE(facts.selects_star);
}

TEST(SkeletonTest, AliasWinsAsOutputColumn) {
  QueryFacts facts = MustAnalyze("SELECT u - g AS ug FROM t");
  EXPECT_EQ(facts.selected_columns, (std::vector<std::string>{"ug"}));
}

TEST(SkeletonTest, StarSetsFlag) {
  QueryFacts facts = MustAnalyze("SELECT * FROM t");
  EXPECT_TRUE(facts.selects_star);
  EXPECT_TRUE(facts.selected_columns.empty());
}

TEST(SkeletonTest, TablesCollectedFromJoinsAndSubqueries) {
  QueryFacts facts = MustAnalyze(
      "SELECT * FROM a JOIN b ON a.x = b.x, (SELECT * FROM c) s, fGetNearbyObjEq(1,2,3) n");
  EXPECT_EQ(facts.tables, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(facts.table_functions, (std::vector<std::string>{"fgetnearbyobjeq"}));
}

TEST(SkeletonTest, FunctionCallInSelectNamedByFunction) {
  QueryFacts facts = MustAnalyze("SELECT count(orders) FROM Orders WHERE empId = 12");
  EXPECT_EQ(facts.selected_columns, (std::vector<std::string>{"count"}));
}

// Property-style sweep: a query and its skeleton must agree for any
// constant substituted into the same template.
class SkeletonParamTest : public ::testing::TestWithParam<int> {};

TEST_P(SkeletonParamTest, ConstantsDoNotChangeTemplate) {
  int v = GetParam();
  QueryFacts base = MustAnalyze("SELECT rowc_g, colc_g FROM photoPrimary WHERE objid = 1");
  QueryFacts variant = MustAnalyze(
      StrFormat("SELECT rowc_g, colc_g FROM photoPrimary WHERE objid = %d", v));
  EXPECT_EQ(base.tmpl, variant.tmpl);
  EXPECT_EQ(variant.predicates[0].values[0], std::to_string(v));
}

INSTANTIATE_TEST_SUITE_P(Constants, SkeletonParamTest,
                         ::testing::Values(0, 7, 42, 1000000, -5, 2147483647));

}  // namespace
}  // namespace sqlog::sql
