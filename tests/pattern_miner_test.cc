#include "core/pattern_miner.h"

#include <gtest/gtest.h>

#include "util/string_util.h"

namespace sqlog::core {
namespace {

/// Builds a ParsedLog from (user, time, statement) triples.
struct Entry {
  const char* user;
  int64_t time_ms;
  std::string sql;
};

ParsedLog BuildParsedLog(const std::vector<Entry>& entries, TemplateStore& store) {
  log::QueryLog log;
  for (const auto& entry : entries) {
    log::LogRecord record;
    record.user = entry.user;
    record.timestamp_ms = entry.time_ms;
    record.statement = entry.sql;
    log.Append(record);
  }
  log.Renumber();
  return ParseLog(log, store);
}

MinerOptions LowSupport() {
  MinerOptions options;
  options.min_support = 1;
  return options;
}

const Pattern* FindByLength(const std::vector<Pattern>& patterns, size_t length,
                            uint64_t frequency) {
  for (const auto& p : patterns) {
    if (p.length() == length && p.frequency == frequency) return &p;
  }
  return nullptr;
}

TEST(PatternMinerTest, SingleTemplateFrequencyIsOccurrenceCount) {
  TemplateStore store;
  std::vector<Entry> entries;
  for (int i = 0; i < 5; ++i) {
    entries.push_back({"u", 1000 + i * 1000,
                       StrFormat("SELECT x FROM t WHERE id = %d", i)});
  }
  ParsedLog parsed = BuildParsedLog(entries, store);
  auto patterns = MinePatterns(parsed, LowSupport());
  ASSERT_EQ(patterns.size(), 1u);  // (A,A) self-repetitions are subsumed
  EXPECT_EQ(patterns[0].length(), 1u);
  EXPECT_EQ(patterns[0].frequency, 5u);
  EXPECT_EQ(patterns[0].user_popularity(), 1u);
}

TEST(PatternMinerTest, AlternatingPairMinedOnce) {
  TemplateStore store;
  std::vector<Entry> entries;
  for (int i = 0; i < 4; ++i) {
    entries.push_back({"u", 1000 + i * 2000,
                       StrFormat("SELECT a FROM t WHERE id = %d", i)});
    entries.push_back({"u", 2000 + i * 2000,
                       StrFormat("SELECT b FROM t WHERE id = %d", i)});
  }
  ParsedLog parsed = BuildParsedLog(entries, store);
  auto patterns = MinePatterns(parsed, LowSupport());
  // Non-overlapping (A,B) instances: 4. The (B,A) seam windows: 3.
  const Pattern* ab = FindByLength(patterns, 2, 4);
  ASSERT_NE(ab, nullptr);
  // Self-repetition windows like (A,B,A,B) are subsumed and absent.
  for (const auto& p : patterns) {
    EXPECT_LE(p.length(), 3u);
  }
}

TEST(PatternMinerTest, GapSplitsInstances) {
  TemplateStore store;
  std::vector<Entry> entries = {
      {"u", 0, "SELECT a FROM t WHERE id = 1"},
      {"u", 1000, "SELECT b FROM t WHERE id = 1"},
      // 2 hours later — a different segment.
      {"u", 7200000, "SELECT a FROM t WHERE id = 2"},
      {"u", 7201000, "SELECT b FROM t WHERE id = 2"},
  };
  ParsedLog parsed = BuildParsedLog(entries, store);
  MinerOptions options = LowSupport();
  options.max_gap_ms = 60000;
  auto patterns = MinePatterns(parsed, options);
  const Pattern* ab = FindByLength(patterns, 2, 2);
  ASSERT_NE(ab, nullptr);  // two instances, one per segment
}

TEST(PatternMinerTest, UsersDoNotMixStreams) {
  TemplateStore store;
  std::vector<Entry> entries = {
      {"a", 0, "SELECT a FROM t WHERE id = 1"},
      {"b", 100, "SELECT b FROM t WHERE id = 1"},
      {"a", 200, "SELECT b FROM t WHERE id = 2"},
  };
  ParsedLog parsed = BuildParsedLog(entries, store);
  auto patterns = MinePatterns(parsed, LowSupport());
  // The pair (A,B) exists only inside user a's stream.
  const Pattern* ab = FindByLength(patterns, 2, 1);
  ASSERT_NE(ab, nullptr);
  EXPECT_EQ(ab->user_popularity(), 1u);
}

TEST(PatternMinerTest, UserPopularityCountsDistinctUsers) {
  TemplateStore store;
  std::vector<Entry> entries;
  for (int u = 0; u < 3; ++u) {
    entries.push_back({u == 0 ? "a" : (u == 1 ? "b" : "c"), u * 10000,
                       StrFormat("SELECT x FROM t WHERE id = %d", u)});
  }
  ParsedLog parsed = BuildParsedLog(entries, store);
  auto patterns = MinePatterns(parsed, LowSupport());
  ASSERT_EQ(patterns.size(), 1u);
  EXPECT_EQ(patterns[0].frequency, 3u);
  EXPECT_EQ(patterns[0].user_popularity(), 3u);
}

TEST(PatternMinerTest, MinSupportFilters) {
  TemplateStore store;
  std::vector<Entry> entries = {
      {"u", 0, "SELECT rare FROM t WHERE id = 1"},
      {"u", 100000000, "SELECT common FROM t WHERE id = 1"},
      {"u", 200000000, "SELECT common FROM t WHERE id = 2"},
  };
  ParsedLog parsed = BuildParsedLog(entries, store);
  MinerOptions options;
  options.min_support = 2;
  auto patterns = MinePatterns(parsed, options);
  ASSERT_EQ(patterns.size(), 1u);
  EXPECT_EQ(patterns[0].frequency, 2u);
}

TEST(PatternMinerTest, MaxLengthBoundsWindow) {
  TemplateStore store;
  std::vector<Entry> entries;
  for (int i = 0; i < 4; ++i) {
    entries.push_back({"u", i * 1000,
                       StrFormat("SELECT c%d FROM t WHERE id = 1", i)});
  }
  ParsedLog parsed = BuildParsedLog(entries, store);
  MinerOptions options = LowSupport();
  options.max_length = 2;
  auto patterns = MinePatterns(parsed, options);
  for (const auto& p : patterns) {
    EXPECT_LE(p.length(), 2u);
  }
}

TEST(PatternMinerTest, SortByFrequencyIsDeterministic) {
  TemplateStore store;
  std::vector<Entry> entries = {
      {"u", 0, "SELECT a FROM t WHERE id = 1"},
      {"u", 100000000, "SELECT b FROM t WHERE id = 1"},
      {"u", 200000000, "SELECT a FROM t WHERE id = 2"},
  };
  ParsedLog parsed = BuildParsedLog(entries, store);
  auto patterns = MinePatterns(parsed, LowSupport());
  SortByFrequency(patterns);
  for (size_t i = 1; i < patterns.size(); ++i) {
    EXPECT_GE(patterns[i - 1].frequency, patterns[i].frequency);
  }
  // Ties broken by length then ids — re-sorting yields the same order.
  auto copy = patterns;
  SortByFrequency(copy);
  for (size_t i = 0; i < patterns.size(); ++i) {
    EXPECT_EQ(copy[i].template_ids, patterns[i].template_ids);
  }
}

TEST(PatternMinerTest, EmptyLogYieldsNoPatterns) {
  TemplateStore store;
  ParsedLog parsed = BuildParsedLog({}, store);
  EXPECT_TRUE(MinePatterns(parsed, LowSupport()).empty());
}

TEST(PatternMinerTest, CoveredStatements) {
  Pattern pattern;
  pattern.template_ids = {1, 2};
  pattern.frequency = 10;
  EXPECT_EQ(pattern.covered_statements(), 20u);
}

}  // namespace
}  // namespace sqlog::core
