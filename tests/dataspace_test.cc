#include "analysis/dataspace.h"

#include <gtest/gtest.h>

namespace sqlog::analysis {
namespace {

DataSpace SpaceOf(const std::string& sql) {
  auto facts = sqlog::sql::ParseAndAnalyze(sql);
  EXPECT_TRUE(facts.ok()) << sql;
  return ExtractDataSpace(facts.value());
}

TEST(DataSpaceTest, TableKeyIsSortedUnion) {
  DataSpace space = SpaceOf("SELECT * FROM b, a JOIN c ON a.x = c.x");
  EXPECT_EQ(space.table_key, "a+b+c");
}

TEST(DataSpaceTest, TableFunctionsJoinTableKey) {
  DataSpace space = SpaceOf("SELECT * FROM fGetNearbyObjEq(1,2,3) n, photoPrimary p");
  EXPECT_EQ(space.table_key, "fgetnearbyobjeq+photoprimary");
}

TEST(DataSpaceTest, EqualityBecomesPointInterval) {
  DataSpace space = SpaceOf("SELECT a FROM t WHERE x = 5");
  ASSERT_EQ(space.numeric_ranges.count("x"), 1u);
  EXPECT_TRUE(space.numeric_ranges.at("x").is_point());
  EXPECT_EQ(space.numeric_ranges.at("x").lo, 5.0);
}

TEST(DataSpaceTest, RangePredicatesBoundOneSide) {
  DataSpace space = SpaceOf("SELECT a FROM t WHERE x > 5 AND x <= 10");
  const Interval& interval = space.numeric_ranges.at("x");
  EXPECT_EQ(interval.lo, 5.0);
  EXPECT_EQ(interval.hi, 10.0);
}

TEST(DataSpaceTest, BetweenBoundsBothSides) {
  DataSpace space = SpaceOf("SELECT a FROM t WHERE r BETWEEN 14 AND 17");
  EXPECT_EQ(space.numeric_ranges.at("r").lo, 14.0);
  EXPECT_EQ(space.numeric_ranges.at("r").hi, 17.0);
}

TEST(DataSpaceTest, InListBecomesHull) {
  DataSpace space = SpaceOf("SELECT a FROM t WHERE id IN (5, 1, 9)");
  EXPECT_EQ(space.numeric_ranges.at("id").lo, 1.0);
  EXPECT_EQ(space.numeric_ranges.at("id").hi, 9.0);
}

TEST(DataSpaceTest, StringEqualityIsLoweredPoint) {
  DataSpace space = SpaceOf("SELECT a FROM t WHERE name = 'Galaxy'");
  ASSERT_EQ(space.string_points.count("name"), 1u);
  EXPECT_EQ(space.string_points.at("name"), "galaxy");
}

TEST(OverlapTest, IdenticalQueriesOverlapFully) {
  DataSpace a = SpaceOf("SELECT a FROM t WHERE x = 5");
  DataSpace b = SpaceOf("SELECT b FROM t WHERE x = 5");
  EXPECT_DOUBLE_EQ(Overlap(a, b), 1.0);
  EXPECT_DOUBLE_EQ(Distance(a, b), 0.0);
}

TEST(OverlapTest, DifferentTablesNeverOverlap) {
  DataSpace a = SpaceOf("SELECT a FROM t WHERE x = 5");
  DataSpace b = SpaceOf("SELECT a FROM u WHERE x = 5");
  EXPECT_DOUBLE_EQ(Overlap(a, b), 0.0);
}

TEST(OverlapTest, DifferentPointsAreDisjoint) {
  DataSpace a = SpaceOf("SELECT a FROM t WHERE x = 5");
  DataSpace b = SpaceOf("SELECT a FROM t WHERE x = 6");
  EXPECT_DOUBLE_EQ(Overlap(a, b), 0.0);
}

TEST(OverlapTest, DisjointWindowsAreDisjoint) {
  // The SWS signature: consecutive disjoint slices.
  DataSpace a = SpaceOf("SELECT a FROM t WHERE ra >= 10 and ra < 20");
  DataSpace b = SpaceOf("SELECT a FROM t WHERE ra >= 20 and ra < 30");
  EXPECT_LT(Overlap(a, b), 0.01);
}

TEST(OverlapTest, PartialIntervalOverlapIsJaccard) {
  DataSpace a = SpaceOf("SELECT a FROM t WHERE r BETWEEN 0 AND 10");
  DataSpace b = SpaceOf("SELECT a FROM t WHERE r BETWEEN 5 AND 15");
  EXPECT_NEAR(Overlap(a, b), 5.0 / 15.0, 1e-9);
}

TEST(OverlapTest, ColumnConstrainedOnOneSideOnlyIsDisjoint) {
  DataSpace a = SpaceOf("SELECT a FROM t WHERE x = 5 AND y = 1");
  DataSpace b = SpaceOf("SELECT a FROM t WHERE x = 5");
  EXPECT_DOUBLE_EQ(Overlap(a, b), 0.0);
}

TEST(OverlapTest, UnconstrainedFullTableQueriesAreIdentical) {
  DataSpace a = SpaceOf("SELECT a FROM t");
  DataSpace b = SpaceOf("SELECT b, c FROM t");
  EXPECT_DOUBLE_EQ(Overlap(a, b), 1.0);
}

TEST(OverlapTest, StringPointsMustMatch) {
  DataSpace a = SpaceOf("SELECT a FROM t WHERE name = 'Galaxy'");
  DataSpace b = SpaceOf("SELECT a FROM t WHERE name = 'galaxy'");
  DataSpace c = SpaceOf("SELECT a FROM t WHERE name = 'Star'");
  EXPECT_DOUBLE_EQ(Overlap(a, b), 1.0);  // case-insensitive
  EXPECT_DOUBLE_EQ(Overlap(a, c), 0.0);
}

TEST(OverlapTest, MultiColumnFactorsMultiply) {
  DataSpace a = SpaceOf("SELECT a FROM t WHERE x BETWEEN 0 AND 10 AND y BETWEEN 0 AND 10");
  DataSpace b = SpaceOf("SELECT a FROM t WHERE x BETWEEN 0 AND 10 AND y BETWEEN 5 AND 15");
  EXPECT_NEAR(Overlap(a, b), 1.0 * (5.0 / 15.0), 1e-9);
}

TEST(OverlapTest, OverlapIsSymmetric) {
  DataSpace a = SpaceOf("SELECT a FROM t WHERE r BETWEEN 0 AND 10");
  DataSpace b = SpaceOf("SELECT a FROM t WHERE r BETWEEN 5 AND 15");
  EXPECT_DOUBLE_EQ(Overlap(a, b), Overlap(b, a));
}

TEST(OverlapTest, OverlapBoundedZeroOne) {
  const char* queries[] = {
      "SELECT a FROM t WHERE x = 5",
      "SELECT a FROM t WHERE x > 3",
      "SELECT a FROM t WHERE x BETWEEN 1 AND 9",
      "SELECT a FROM t",
      "SELECT a FROM t WHERE name = 'x'",
  };
  for (const char* qa : queries) {
    for (const char* qb : queries) {
      double overlap = Overlap(SpaceOf(qa), SpaceOf(qb));
      EXPECT_GE(overlap, 0.0) << qa << " vs " << qb;
      EXPECT_LE(overlap, 1.0) << qa << " vs " << qb;
    }
  }
}

TEST(DataSpaceTest, SignatureKeyDistinguishesSpaces) {
  EXPECT_EQ(SpaceOf("SELECT a FROM t WHERE x = 5").SignatureKey(),
            SpaceOf("SELECT b FROM t WHERE x = 5").SignatureKey());
  EXPECT_NE(SpaceOf("SELECT a FROM t WHERE x = 5").SignatureKey(),
            SpaceOf("SELECT a FROM t WHERE x = 6").SignatureKey());
  EXPECT_NE(SpaceOf("SELECT a FROM t WHERE x = 5").SignatureKey(),
            SpaceOf("SELECT a FROM u WHERE x = 5").SignatureKey());
}

}  // namespace
}  // namespace sqlog::analysis
