// Round-trip and corruption battery for the `.sqb` binary log format.
//
// Round-trip: CSV → .sqb → CSV must be byte-identical — for the
// calibrated generator log and for logs built from the checked-in fuzz
// corpus statements (hostile quoting, newlines, non-lexing bytes) — at
// block sizes 1, 7, 4096 and one-block-per-file, through all three
// reader sources (borrowed buffer, mmap, streamed file).
//
// Corruption: every single-bit flip and every truncation of a valid
// file must either decode deterministically or fail with a structured
// ParseError naming the offset and section — never crash. The shape of
// the rejection is enforced by oracle::CheckBinLogRobustness, the same
// oracle fuzz_binlog drives.

#include "log/binlog.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/parse_cache.h"
#include "log/binlog_format.h"
#include "log/generator.h"
#include "log/log_io.h"
#include "tests/oracles/oracles.h"

#ifndef SQLOG_FUZZ_CORPUS_DIR
#error "SQLOG_FUZZ_CORPUS_DIR must point at fuzz/corpus"
#endif

namespace sqlog::log {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

// Writes `log` as `.sqb` with the given block size and returns the raw
// file bytes. Asserts the writer accepts every record.
std::string WriteSqb(const QueryLog& log, size_t block_records,
                     BinLogWriter* out_writer = nullptr) {
  BinLogWriterOptions options;
  options.block_records = block_records;
  options.recipe_builder = core::BuildStatementRecipe;
  BinLogWriter writer(options);
  const std::string path = TempPath("binlog_test_write.sqb");
  Status open = writer.Open(path);
  EXPECT_TRUE(open.ok()) << open.ToString();
  for (const LogRecord& record : log.records()) {
    Status append = writer.Append(record);
    EXPECT_TRUE(append.ok()) << append.ToString();
  }
  Status close = writer.Close();
  EXPECT_TRUE(close.ok()) << close.ToString();
  if (out_writer != nullptr) {
    // Counters survive Close(); hand them back for assertions.
    *out_writer = std::move(writer);
  }
  return Slurp(path);
}

// Decodes `bytes` with OpenFromBuffer and returns the records.
QueryLog ReadSqbBuffer(std::string_view bytes) {
  BinLogReader reader;
  Status open = reader.OpenFromBuffer(bytes);
  EXPECT_TRUE(open.ok()) << open.ToString();
  QueryLog log;
  LogRecord record;
  bool eof = false;
  while (true) {
    Status read = reader.ReadRecord(&record, &eof);
    EXPECT_TRUE(read.ok()) << read.ToString();
    if (!read.ok() || eof) break;
    log.Append(record);
  }
  EXPECT_EQ(log.size(), reader.record_count());
  return log;
}

void ExpectSameRecords(const QueryLog& want, const QueryLog& got) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    const LogRecord& w = want.records()[i];
    const LogRecord& g = got.records()[i];
    EXPECT_EQ(g.seq, w.seq) << "record " << i;
    EXPECT_EQ(g.timestamp_ms, w.timestamp_ms) << "record " << i;
    EXPECT_EQ(g.user, w.user) << "record " << i;
    EXPECT_EQ(g.session, w.session) << "record " << i;
    EXPECT_EQ(g.row_count, w.row_count) << "record " << i;
    EXPECT_EQ(g.truth, w.truth) << "record " << i;
    EXPECT_EQ(g.statement, w.statement) << "record " << i;
  }
}

QueryLog GeneratorLog(size_t statements) {
  GeneratorConfig config;
  config.target_statements = statements;
  config.human_users = 40;
  return GenerateLog(config);
}

// One record per checked-in fuzz corpus file: the statements exercise
// hostile quoting, embedded newlines/CRs, non-lexing byte soup (the
// writer's verbatim fallback) and every SQL construct the other
// harnesses cover.
QueryLog CorpusLog() {
  QueryLog log;
  uint64_t seq = 0;
  std::vector<fs::path> files;
  for (const char* harness : {"lexer", "parser", "printer", "skeleton"}) {
    const fs::path dir = fs::path(SQLOG_FUZZ_CORPUS_DIR) / harness;
    if (!fs::exists(dir)) continue;
    for (const auto& file : fs::recursive_directory_iterator(dir)) {
      if (file.is_regular_file()) files.push_back(file.path());
    }
  }
  std::sort(files.begin(), files.end());
  for (const fs::path& path : files) {
    LogRecord record;
    record.seq = seq;
    record.timestamp_ms = 1041379200000 + static_cast<int64_t>(seq) * 137;
    record.user = (seq % 3 == 0) ? "" : "10.0.0." + std::to_string(seq % 7);
    record.session = record.user.empty() ? "" : record.user + "#1";
    record.row_count = (seq % 5 == 0) ? -1 : static_cast<int64_t>(seq * 11);
    record.truth = (seq % 2 == 0) ? TruthLabel::kOrganic : TruthLabel::kDwStifle;
    record.statement = Slurp(path.string());
    ++seq;
    log.Append(record);
  }
  return log;
}

class BinLogRoundTripTest : public ::testing::TestWithParam<size_t> {};

INSTANTIATE_TEST_SUITE_P(BlockSizes, BinLogRoundTripTest,
                         ::testing::Values<size_t>(1, 7, 4096, 1u << 20));

TEST_P(BinLogRoundTripTest, GeneratorLogIsByteIdentical) {
  const QueryLog original = GeneratorLog(2000);
  const std::string bytes = WriteSqb(original, GetParam());
  const QueryLog decoded = ReadSqbBuffer(bytes);
  ExpectSameRecords(original, decoded);
  // The CSV serializations — the format the rest of the repo golden-tests
  // against — must match byte for byte.
  EXPECT_EQ(LogIo::ToCsv(decoded), LogIo::ToCsv(original));
}

TEST_P(BinLogRoundTripTest, FuzzCorpusStatementsAreByteIdentical) {
  const QueryLog original = CorpusLog();
  ASSERT_GT(original.size(), 20u) << "fuzz corpus unexpectedly small";
  const std::string bytes = WriteSqb(original, GetParam());
  const QueryLog decoded = ReadSqbBuffer(bytes);
  ExpectSameRecords(original, decoded);
  EXPECT_EQ(LogIo::ToCsv(decoded), LogIo::ToCsv(original));
}

TEST(BinLogTest, AllReaderSourcesAgree) {
  const QueryLog original = GeneratorLog(500);
  const std::string bytes = WriteSqb(original, 64);
  const std::string path = TempPath("binlog_sources.sqb");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  const QueryLog from_buffer = ReadSqbBuffer(bytes);

  BinLogReader mapped;  // default: mmap when the platform has it
  ASSERT_TRUE(mapped.Open(path).ok());

  BinLogReaderOptions no_mmap;
  no_mmap.use_mmap = false;
  BinLogReader streamed(no_mmap);
  ASSERT_TRUE(streamed.Open(path).ok());
  EXPECT_FALSE(streamed.mapped());

  for (BinLogReader* reader : {&mapped, &streamed}) {
    QueryLog got;
    LogRecord record;
    bool eof = false;
    while (true) {
      Status read = reader->ReadRecord(&record, &eof);
      ASSERT_TRUE(read.ok()) << read.ToString();
      if (eof) break;
      got.Append(record);
    }
    ExpectSameRecords(from_buffer, got);
  }
  ExpectSameRecords(original, from_buffer);
}

TEST(BinLogTest, EmptyLogRoundTrips) {
  const QueryLog empty;
  const std::string bytes = WriteSqb(empty, 4096);
  BinLogReader reader;
  ASSERT_TRUE(reader.OpenFromBuffer(bytes).ok());
  EXPECT_EQ(reader.record_count(), 0u);
  EXPECT_EQ(reader.block_count(), 0u);
  LogRecord record;
  bool eof = false;
  ASSERT_TRUE(reader.ReadRecord(&record, &eof).ok());
  EXPECT_TRUE(eof);
}

TEST(BinLogTest, LiteralTwinsShareOneDictionaryEntry) {
  QueryLog log;
  const char* statements[] = {
      "SELECT a FROM t WHERE x = 1",
      "SELECT a FROM t WHERE x = 2",
      "SELECT a FROM t WHERE x = 99885",
      "SELECT a FROM t WHERE x = 'text'",
  };
  uint64_t seq = 0;
  for (const char* s : statements) {
    LogRecord record;
    record.seq = seq;
    record.timestamp_ms = 1000 + static_cast<int64_t>(seq);
    record.statement = s;
    ++seq;
    log.Append(record);
  }
  BinLogWriter writer;
  const std::string bytes = WriteSqb(log, 4096, &writer);
  // The three numeric twins intern one template. The string variant keys
  // differently (the normalized key carries the token type, so <num> and
  // <str> placeholders are distinct templates) and adds a second entry.
  EXPECT_EQ(writer.dictionary_size(), 2u);
  EXPECT_EQ(writer.verbatim_records(), 0u);
  ExpectSameRecords(log, ReadSqbBuffer(bytes));
}

TEST(BinLogTest, NonLexingStatementsFallBackToVerbatim) {
  QueryLog log;
  LogRecord record;
  record.seq = 0;
  record.timestamp_ms = 7;
  record.statement = std::string("SELECT '\x01 unterminated \xff\xfe");
  log.Append(record);
  record.seq = 1;
  record.timestamp_ms = 8;
  record.statement = std::string("bytes\0with\0nul", 14);
  log.Append(record);

  BinLogWriter writer;
  const std::string bytes = WriteSqb(log, 4096, &writer);
  EXPECT_GE(writer.verbatim_records(), 1u);
  // Verbatim or not, the round trip stays exact.
  ExpectSameRecords(log, ReadSqbBuffer(bytes));
}

TEST(BinLogTest, RenumberAssignsOutputPositions) {
  QueryLog log;
  for (uint64_t seq : {900u, 17u, 404u}) {
    LogRecord record;
    record.seq = seq;
    record.timestamp_ms = 50;
    record.statement = "SELECT 1";
    log.Append(record);
  }
  BinLogWriterOptions options;
  options.renumber = true;
  BinLogWriter writer(options);
  const std::string path = TempPath("binlog_renumber.sqb");
  ASSERT_TRUE(writer.Open(path).ok());
  for (const LogRecord& record : log.records()) {
    ASSERT_TRUE(writer.Append(record).ok());
  }
  ASSERT_TRUE(writer.Close().ok());
  const QueryLog decoded = ReadSqbBuffer(Slurp(path));
  ASSERT_EQ(decoded.size(), 3u);
  for (size_t i = 0; i < decoded.size(); ++i) {
    EXPECT_EQ(decoded.records()[i].seq, i);
  }
}

TEST(BinLogTest, DictionaryRecipesSeedTheParseCache) {
  QueryLog log;
  LogRecord record;
  record.seq = 0;
  record.timestamp_ms = 1;
  record.statement = "SELECT name FROM users WHERE id = 42";
  log.Append(record);
  record.seq = 1;
  record.timestamp_ms = 2;
  record.statement = "INSERT INTO t VALUES (1)";  // non-SELECT: no recipe
  log.Append(record);

  const std::string bytes = WriteSqb(log, 4096);
  BinLogReader reader;
  ASSERT_TRUE(reader.OpenFromBuffer(bytes).ok());
  ASSERT_EQ(reader.dictionary().size(), 2u);

  size_t usable = 0;
  for (const auto& entry : reader.dictionary()) {
    auto seeded = core::DeserializeStatementRecipe(entry.text, entry.recipe);
    if (entry.recipe.empty()) {
      EXPECT_EQ(seeded, nullptr);
    } else {
      EXPECT_NE(seeded, nullptr) << entry.text;
    }
    if (seeded != nullptr) ++usable;
  }
  EXPECT_EQ(usable, 1u);  // the SELECT template carries a validated recipe
}

// --- Corruption battery -------------------------------------------------
//
// A small but fully featured file (multiple blocks, both dictionary and
// verbatim statements, non-empty string table) keeps the every-byte
// sweeps fast while still covering every section of the wire format.

std::string CorruptionSubject() {
  QueryLog log;
  const char* statements[] = {
      "SELECT a FROM t WHERE x = 1",
      "SELECT a FROM t WHERE x = 2",
      "\xff not sql at all",
      "SELECT b, c FROM u WHERE y < 10 AND z = 'q'",
      "SELECT a FROM t WHERE x = 3",
  };
  uint64_t seq = 0;
  for (const char* s : statements) {
    LogRecord record;
    record.seq = seq;
    record.timestamp_ms = 1041379200000 + static_cast<int64_t>(seq) * 1000;
    record.user = "u" + std::to_string(seq % 2);
    record.session = record.user + "#1";
    record.row_count = static_cast<int64_t>(seq);
    record.truth = TruthLabel::kOrganic;
    record.statement = s;
    ++seq;
    log.Append(record);
  }
  return WriteSqb(log, /*block_records=*/2);
}

TEST(BinLogCorruptionTest, EveryBitFlipIsHandledStructurally) {
  const std::string valid = CorruptionSubject();
  ASSERT_TRUE(oracle::CheckBinLogRobustness(valid).ok);
  std::string mutant = valid;
  for (size_t i = 0; i < valid.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      mutant[i] = static_cast<char>(valid[i] ^ (1 << bit));
      oracle::OracleResult result = oracle::CheckBinLogRobustness(mutant);
      ASSERT_TRUE(result.ok)
          << "bit " << bit << " of byte " << i << ": " << result.message;
    }
    mutant[i] = valid[i];
  }
}

TEST(BinLogCorruptionTest, EveryTruncationIsHandledStructurally) {
  const std::string valid = CorruptionSubject();
  for (size_t len = 0; len < valid.size(); ++len) {
    oracle::OracleResult result =
        oracle::CheckBinLogRobustness(std::string_view(valid).substr(0, len));
    ASSERT_TRUE(result.ok) << "truncated to " << len << ": " << result.message;
    // A strict prefix of a valid file must never decode as valid.
    BinLogReader reader;
    EXPECT_FALSE(reader.OpenFromBuffer(std::string_view(valid).substr(0, len)).ok())
        << "truncation to " << len << " bytes decoded successfully";
  }
}

TEST(BinLogCorruptionTest, BadMagicIsRejectedByName) {
  std::string mutant = CorruptionSubject();
  mutant[0] = 'X';
  BinLogReader reader;
  Status status = reader.OpenFromBuffer(mutant);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kParseError);
  EXPECT_NE(status.message().find("magic"), std::string::npos) << status.ToString();
}

TEST(BinLogCorruptionTest, FutureVersionIsRejectedByName) {
  std::string mutant = CorruptionSubject();
  mutant[8] = 2;  // version u32 little-endian at offset 8
  BinLogReader reader;
  Status status = reader.OpenFromBuffer(mutant);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kParseError);
  EXPECT_NE(status.message().find("unsupported format version 2"),
            std::string::npos)
      << status.ToString();
}

TEST(BinLogCorruptionTest, UnknownFlagsAreRejectedByName) {
  std::string mutant = CorruptionSubject();
  mutant[12] = 1;  // flags u32 little-endian at offset 12
  BinLogReader reader;
  Status status = reader.OpenFromBuffer(mutant);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kParseError);
  EXPECT_NE(status.message().find("flags"), std::string::npos) << status.ToString();
}

TEST(BinLogCorruptionTest, BlockPayloadFlipTripsTheChecksum) {
  const std::string valid = CorruptionSubject();
  // First block payload starts right after the 16-byte header plus the
  // 20-byte block frame.
  std::string mutant = valid;
  const size_t payload_byte = binfmt::kHeaderBytes + binfmt::kBlockFrameBytes;
  ASSERT_LT(payload_byte, mutant.size());
  mutant[payload_byte] = static_cast<char>(mutant[payload_byte] ^ 0x40);
  BinLogReader reader;
  Status status = reader.OpenFromBuffer(mutant);
  LogRecord record;
  bool eof = false;
  while (status.ok() && !eof) {
    status = reader.ReadRecord(&record, &eof);
  }
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kParseError);
  EXPECT_NE(status.message().find("block"), std::string::npos) << status.ToString();
}

TEST(BinLogCorruptionTest, StreamingReaderRejectsCorruptionToo) {
  const std::string valid = CorruptionSubject();
  // Flip one byte in the middle; write to disk; both reader modes must
  // reject (at open or during block reads), never crash.
  std::string mutant = valid;
  mutant[mutant.size() / 2] = static_cast<char>(mutant[mutant.size() / 2] ^ 0x10);
  const std::string path = TempPath("binlog_corrupt.sqb");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(mutant.data(), static_cast<std::streamsize>(mutant.size()));
  }
  for (bool use_mmap : {true, false}) {
    BinLogReaderOptions options;
    options.use_mmap = use_mmap;
    BinLogReader reader(options);
    Status status = reader.Open(path);
    LogRecord record;
    bool eof = false;
    while (status.ok() && !eof) {
      status = reader.ReadRecord(&record, &eof);
    }
    ASSERT_FALSE(status.ok()) << "mmap=" << use_mmap;
    EXPECT_EQ(status.code(), StatusCode::kParseError);
  }
}

}  // namespace
}  // namespace sqlog::log
