// End-to-end integration tests: synthetic workload → full pipeline →
// cross-stage invariants, plus solver-vs-engine result equivalence.

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "analysis/clustering.h"
#include "catalog/schema.h"
#include "core/pipeline.h"
#include "core/solver.h"
#include "engine/database.h"
#include "engine/executor.h"
#include "log/generator.h"
#include "util/string_util.h"

namespace sqlog {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    log::GeneratorConfig config;
    config.target_statements = 20000;
    config.cth_families = 12;  // scaled to the small log
    raw_ = new log::QueryLog(log::GenerateLog(config));
    schema_ = new catalog::Schema(catalog::MakeSkyServerSchema());
    core::Pipeline pipeline;
    pipeline.SetSchema(schema_);
    result_ = new core::PipelineResult(pipeline.Run(*raw_).value());
  }

  static void TearDownTestSuite() {
    delete result_;
    delete schema_;
    delete raw_;
    result_ = nullptr;
    schema_ = nullptr;
    raw_ = nullptr;
  }

  static log::QueryLog* raw_;
  static catalog::Schema* schema_;
  static core::PipelineResult* result_;
};

log::QueryLog* IntegrationTest::raw_ = nullptr;
catalog::Schema* IntegrationTest::schema_ = nullptr;
core::PipelineResult* IntegrationTest::result_ = nullptr;

TEST_F(IntegrationTest, StageSizesAreConsistent) {
  const auto& stats = result_->stats;
  EXPECT_EQ(stats.original_size, raw_->size());
  EXPECT_EQ(stats.after_dedup_size + stats.duplicates_removed, stats.original_size);
  EXPECT_EQ(stats.select_count + stats.non_select_count + stats.syntax_error_count,
            stats.after_dedup_size);
  EXPECT_LT(stats.final_size, stats.after_dedup_size);
  EXPECT_LE(stats.removal_size, stats.final_size);
}

TEST_F(IntegrationTest, DuplicateShareMatchesGeneratorConfig) {
  double share = static_cast<double>(result_->stats.duplicates_removed) /
                 static_cast<double>(result_->stats.original_size);
  EXPECT_GT(share, 0.02);
  EXPECT_LT(share, 0.07);
}

TEST_F(IntegrationTest, AllStifleClassesAreFound) {
  EXPECT_GT(result_->stats.distinct_dw, 0u);
  EXPECT_GT(result_->stats.distinct_ds, 0u);
  EXPECT_GT(result_->stats.distinct_df, 0u);
  EXPECT_GT(result_->stats.distinct_cth, 0u);
  EXPECT_GT(result_->stats.distinct_snc, 0u);
}

TEST_F(IntegrationTest, StifleDetectionMatchesGroundTruthLabels) {
  // Every query of every detected DW instance must carry the DW label —
  // or the CTH-real label, since program-driven treasure-hunt follow-ups
  // are themselves DW runs (paper Table 2 double-labels them).
  size_t checked = 0;
  for (const auto& instance : result_->antipatterns.instances) {
    if (instance.type != core::AntipatternType::kDwStifle) continue;
    for (size_t q : instance.query_indices) {
      size_t record = result_->parsed.queries[q].record_index;
      log::TruthLabel truth = result_->pre_clean.records()[record].truth;
      EXPECT_TRUE(truth == log::TruthLabel::kDwStifle ||
                  truth == log::TruthLabel::kCthReal)
          << result_->pre_clean.records()[record].statement;
      ++checked;
    }
  }
  EXPECT_GT(checked, 100u);
}

TEST_F(IntegrationTest, MostGroundTruthStifleQueriesAreDetected) {
  // Recall: count labelled Stifle queries claimed by some instance.
  size_t labelled = 0;
  size_t claimed = 0;
  for (size_t q = 0; q < result_->parsed.queries.size(); ++q) {
    size_t record = result_->parsed.queries[q].record_index;
    log::TruthLabel truth = result_->pre_clean.records()[record].truth;
    if (truth != log::TruthLabel::kDwStifle && truth != log::TruthLabel::kDsStifle &&
        truth != log::TruthLabel::kDfStifle) {
      continue;
    }
    ++labelled;
    if (result_->antipatterns.instance_of_query[q] != 0) ++claimed;
  }
  ASSERT_GT(labelled, 0u);
  EXPECT_GT(static_cast<double>(claimed) / static_cast<double>(labelled), 0.9);
}

TEST_F(IntegrationTest, RecleaningConverges) {
  // Sec. 5.5: after one cleaning step there can be further solvable
  // antipatterns (merged DS pairs line up into fresh DW runs); the share
  // must be small and a second pass must drive it to near zero.
  core::Pipeline pipeline;
  pipeline.SetSchema(schema_);
  core::PipelineResult second = pipeline.Run(result_->clean_log).value();
  uint64_t residual1 = second.stats.queries_dw + second.stats.queries_ds +
                       second.stats.queries_df;
  double share1 = static_cast<double>(residual1) /
                  static_cast<double>(result_->clean_log.size());
  EXPECT_LT(share1, 0.06) << "first-pass residual too high";

  core::PipelineResult third = pipeline.Run(second.clean_log).value();
  uint64_t residual2 =
      third.stats.queries_dw + third.stats.queries_ds + third.stats.queries_df;
  double share2 = static_cast<double>(residual2) /
                  static_cast<double>(second.clean_log.size());
  EXPECT_LT(share2, 0.01) << "second-pass residual too high";
  EXPECT_LT(share2, share1 + 1e-12);
}

TEST_F(IntegrationTest, CleanLogStatementsAllParse) {
  size_t parse_failures = 0;
  for (const auto& record : result_->clean_log.records()) {
    if (sql::ClassifyStatement(record.statement) != sql::StatementKind::kSelect) continue;
    if (!sql::ParseAndAnalyze(record.statement).ok()) ++parse_failures;
  }
  EXPECT_EQ(parse_failures, 0u);
}

TEST_F(IntegrationTest, RemovalLogContainsNoAntipatternQueries) {
  std::unordered_set<std::string> antipattern_statements;
  for (const auto& instance : result_->antipatterns.instances) {
    if (!core::IsSolvable(instance.type)) continue;
    for (size_t q : instance.query_indices) {
      size_t record = result_->parsed.queries[q].record_index;
      antipattern_statements.insert(result_->pre_clean.records()[record].statement);
    }
  }
  for (const auto& record : result_->removal_log.records()) {
    EXPECT_EQ(antipattern_statements.count(record.statement), 0u) << record.statement;
  }
}

TEST_F(IntegrationTest, TopPatternsAfterCleaningAreNotAntipatterns) {
  // Re-run the pipeline on the clean log: the top patterns should be
  // clean (the paper: all top-40 patterns are meaningful after cleaning).
  core::Pipeline pipeline;
  pipeline.SetSchema(schema_);
  core::PipelineResult second = pipeline.Run(result_->clean_log).value();
  size_t top = std::min<size_t>(10, second.patterns.size());
  for (size_t i = 0; i < top; ++i) {
    EXPECT_FALSE(second.PatternIsAntipattern(i, /*solvable_only=*/true))
        << "top pattern " << i;
  }
}

TEST_F(IntegrationTest, RewrittenStifleReturnsSameDataAsOriginals) {
  // Build a small database, execute a detected DW instance's originals
  // and its rewrite, and compare row sets.
  engine::Database db;
  ASSERT_TRUE(engine::PopulateSkyServerSample(db, 500).ok());
  engine::Executor executor(&db);
  auto objids = engine::PhotoObjIds(db);
  ASSERT_GE(objids.size(), 3u);

  std::vector<std::string> originals;
  for (size_t i = 0; i < 3; ++i) {
    originals.push_back(StrFormat("SELECT rowc_g, colc_g FROM photoPrimary WHERE objID = %lld",
                                  static_cast<long long>(objids[i * 5])));
  }
  std::vector<core::ParsedQuery> parsed(originals.size());
  std::vector<const core::ParsedQuery*> members;
  for (size_t i = 0; i < originals.size(); ++i) {
    auto facts = sql::ParseAndAnalyze(originals[i]);
    ASSERT_TRUE(facts.ok());
    parsed[i].facts = std::move(facts.value());
    members.push_back(&parsed[i]);
  }
  auto rewritten = core::RewriteDwStifle(members);
  ASSERT_TRUE(rewritten.ok()) << rewritten.status().ToString();

  std::unordered_map<std::string, std::string> original_rows;  // objid → row
  for (size_t i = 0; i < originals.size(); ++i) {
    auto result = executor.ExecuteSql(originals[i]);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_EQ(result->row_count(), 1u);
    std::string row;
    for (const auto& cell : result->rows[0]) row += cell.ToString() + "|";
    original_rows[std::to_string(objids[i * 5])] = row;
  }

  auto merged = executor.ExecuteSql(rewritten.value());
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  ASSERT_EQ(merged->row_count(), originals.size());
  ASSERT_EQ(merged->column_names.front(), "objid");  // exposed filter column
  for (const auto& row : merged->rows) {
    std::string objid = row[0].ToString();
    std::string rest;
    for (size_t c = 1; c < row.size(); ++c) rest += row[c].ToString() + "|";
    ASSERT_TRUE(original_rows.count(objid)) << objid;
    EXPECT_EQ(original_rows[objid], rest);
  }
}

TEST_F(IntegrationTest, CleaningReducesClusterCount) {
  auto spaces_of = [](const log::QueryLog& log, size_t limit) {
    std::vector<analysis::DataSpace> spaces;
    for (const auto& record : log.records()) {
      if (spaces.size() >= limit) break;
      auto facts = sql::ParseAndAnalyze(record.statement);
      if (!facts.ok()) continue;
      spaces.push_back(analysis::ExtractDataSpace(facts.value()));
    }
    return spaces;
  };
  analysis::ClusteringOptions options;
  options.threshold = 0.9;
  auto raw_result = analysis::ClusterDataSpaces(spaces_of(result_->pre_clean, 5000), options);
  auto removal_result =
      analysis::ClusterDataSpaces(spaces_of(result_->removal_log, 5000), options);
  EXPECT_GT(raw_result.cluster_count(), 0u);
  EXPECT_GT(removal_result.cluster_count(), 0u);
}

}  // namespace
}  // namespace sqlog
