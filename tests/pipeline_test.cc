#include "core/pipeline.h"

#include <gtest/gtest.h>

#include "catalog/schema.h"
#include "util/string_util.h"

namespace sqlog::core {
namespace {

log::LogRecord Make(int64_t t, const char* user, const std::string& sql) {
  log::LogRecord record;
  record.timestamp_ms = t;
  record.user = user;
  record.statement = sql;
  return record;
}

/// A compact hand-crafted log exercising every pipeline stage.
log::QueryLog CraftedLog() {
  log::QueryLog raw;
  // A DW run from one user, tightly spaced (no interleaving even when
  // user metadata is stripped).
  for (int i = 0; i < 4; ++i) {
    raw.Append(Make(1000 + i * 200, "10.0.0.1",
                    StrFormat("SELECT rowc_g, colc_g FROM photoPrimary WHERE objid = %d",
                              100 + i)));
  }
  // A duplicate reload 300 ms after the last run member.
  raw.Append(Make(1900, "10.0.0.1",
                  "SELECT rowc_g, colc_g FROM photoPrimary WHERE objid = 103"));
  // A DS pair from another user.
  raw.Append(Make(50000, "10.0.0.2", "SELECT name FROM Employee WHERE empId = 8"));
  raw.Append(Make(51000, "10.0.0.2", "SELECT address, phone FROM Employee WHERE empId = 8"));
  // Noise.
  raw.Append(Make(60000, "10.0.0.3", "INSERT INTO t VALUES (1)"));
  raw.Append(Make(61000, "10.0.0.3", "SELECT broken FROM"));
  // Ordinary queries.
  raw.Append(Make(70000, "10.0.0.4",
                  "SELECT objid, ra, dec FROM photoPrimary WHERE ra > 10 and ra < 20"));
  raw.Append(Make(90000000, "10.0.0.4",
                  "SELECT objid, ra, dec FROM photoPrimary WHERE ra > 20 and ra < 30"));
  raw.Renumber();
  return raw;
}

PipelineResult RunCrafted(PipelineOptions options = {}) {
  static catalog::Schema schema = catalog::MakeSkyServerSchema();
  options.miner.min_support = 1;
  options.detector.cth_min_support = 1;
  Pipeline pipeline(options);
  pipeline.SetSchema(&schema);
  Result<PipelineResult> result = pipeline.Run(CraftedLog());
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

TEST(PipelineTest, StatsReflectEveryStage) {
  PipelineResult result = RunCrafted();
  EXPECT_EQ(result.stats.original_size, 11u);
  EXPECT_EQ(result.stats.duplicates_removed, 1u);
  EXPECT_EQ(result.stats.after_dedup_size, 10u);
  EXPECT_EQ(result.stats.non_select_count, 1u);
  EXPECT_EQ(result.stats.syntax_error_count, 1u);
  EXPECT_EQ(result.stats.select_count, 8u);
  EXPECT_EQ(result.stats.distinct_dw, 1u);
  EXPECT_EQ(result.stats.queries_dw, 4u);
  EXPECT_EQ(result.stats.distinct_ds, 1u);
  EXPECT_EQ(result.stats.queries_ds, 2u);
  // Clean: DW run (4→1) + DS pair (2→1) + 2 ordinary = 4.
  EXPECT_EQ(result.stats.final_size, 4u);
  // Removal: only the 2 ordinary queries remain.
  EXPECT_EQ(result.stats.removal_size, 2u);
}

TEST(PipelineTest, CleanLogContents) {
  PipelineResult result = RunCrafted();
  std::vector<std::string> statements;
  for (const auto& record : result.clean_log.records()) {
    statements.push_back(record.statement);
  }
  ASSERT_EQ(statements.size(), 4u);
  EXPECT_EQ(statements[0],
            "select objid, rowc_g, colc_g from photoprimary "
            "where objid in (100, 101, 102, 103)");
  EXPECT_EQ(statements[1],
            "select name, address, phone from employee where empid = 8");
}

TEST(PipelineTest, StatsTableRenders) {
  PipelineResult result = RunCrafted();
  std::string table = result.stats.ToTable();
  EXPECT_NE(table.find("Size of original query log"), std::string::npos);
  EXPECT_NE(table.find("11"), std::string::npos);
  EXPECT_NE(table.find("Count of distinct DW-Stifle"), std::string::npos);
}

TEST(PipelineTest, WithoutUserMetadataStillFindsStifles) {
  // Sec. 6.8: strip users; runs still line up by time.
  PipelineOptions options;
  options.use_user_metadata = false;
  PipelineResult result = RunCrafted(options);
  EXPECT_GE(result.stats.queries_dw, 4u);
  // All queries collapse onto the anonymous stream.
  EXPECT_EQ(result.parsed.user_streams.size(), 1u);
}

TEST(PipelineTest, MiningCanBeDisabled) {
  PipelineOptions options;
  options.mine_patterns = false;
  PipelineResult result = RunCrafted(options);
  EXPECT_TRUE(result.patterns.empty());
  EXPECT_EQ(result.stats.pattern_count, 0u);
  // Cleaning still works.
  EXPECT_EQ(result.stats.final_size, 4u);
}

TEST(PipelineTest, PatternFlaggingUsesExactSignature) {
  PipelineResult result = RunCrafted();
  bool found_flagged = false;
  bool found_clean = false;
  for (size_t i = 0; i < result.patterns.size(); ++i) {
    if (result.PatternIsAntipattern(i)) {
      found_flagged = true;
    } else {
      found_clean = true;
    }
  }
  EXPECT_TRUE(found_flagged);
  EXPECT_TRUE(found_clean);
}

TEST(PipelineTest, InputLogIsNotModified) {
  log::QueryLog raw = CraftedLog();
  size_t before = raw.size();
  std::string first = raw.records()[0].statement;
  catalog::Schema schema = catalog::MakeSkyServerSchema();
  Pipeline pipeline;
  pipeline.SetSchema(&schema);
  (void)pipeline.Run(raw);
  EXPECT_EQ(raw.size(), before);
  EXPECT_EQ(raw.records()[0].statement, first);
}

TEST(PipelineTest, EmptyLog) {
  Pipeline pipeline;
  PipelineResult result = pipeline.Run(log::QueryLog{}).value();
  EXPECT_EQ(result.stats.original_size, 0u);
  EXPECT_EQ(result.stats.final_size, 0u);
  EXPECT_TRUE(result.patterns.empty());
}

TEST(PipelineTest, ExtraCleanPassesReachFixpoint) {
  // A DS session whose merged outputs line up into a fresh DW run; one
  // extra pass absorbs it.
  log::QueryLog raw;
  int64_t t = 0;
  for (int obj = 0; obj < 3; ++obj) {
    raw.Append(Make(t += 1000, "u",
                    StrFormat("SELECT rowc_r, colc_r FROM photoPrimary WHERE objid = %d",
                              500 + obj)));
    raw.Append(Make(t += 1000, "u",
                    StrFormat("SELECT rowc_g, colc_g FROM photoPrimary WHERE objid = %d",
                              500 + obj)));
  }
  static catalog::Schema schema = catalog::MakeSkyServerSchema();

  PipelineOptions single;
  single.miner.min_support = 1;
  Pipeline pipeline_single(single);
  pipeline_single.SetSchema(&schema);
  PipelineResult one_pass = pipeline_single.Run(raw).value();
  EXPECT_EQ(one_pass.stats.final_size, 3u);  // three merged DS statements

  PipelineOptions multi = single;
  multi.extra_clean_passes = 3;
  Pipeline pipeline_multi(multi);
  pipeline_multi.SetSchema(&schema);
  PipelineResult fixpoint = pipeline_multi.Run(raw).value();
  // The three merged statements share SELECT/FROM and differ in WHERE —
  // a DW run the second pass merges into one IN query.
  EXPECT_EQ(fixpoint.stats.final_size, 1u);
  EXPECT_NE(fixpoint.clean_log.records()[0].statement.find("in ("), std::string::npos);
}

TEST(PipelineTest, WithoutSchemaKeyAxiomIsSkipped) {
  // No schema ⇒ non-key equality filters become Stifle-eligible.
  log::QueryLog raw;
  raw.Append(Make(0, "u", "SELECT a FROM sometable WHERE somecol = 1"));
  raw.Append(Make(1000, "u", "SELECT a FROM sometable WHERE somecol = 2"));
  PipelineOptions options;
  options.miner.min_support = 1;
  Pipeline pipeline(options);
  PipelineResult result = pipeline.Run(raw).value();
  EXPECT_EQ(result.stats.queries_dw, 2u);
}

TEST(PipelineTest, RunRejectsInvalidOptions) {
  PipelineOptions options;
  options.miner.max_length = 0;
  Pipeline pipeline(options);
  Result<PipelineResult> result = pipeline.Run(CraftedLog());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(PipelineTest, ParseFailuresBecomeCountedDiagnostics) {
  PipelineResult result = RunCrafted();
  // CraftedLog carries exactly one broken statement.
  EXPECT_EQ(result.stats.syntax_error_count, 1u);
  ASSERT_EQ(result.stats.parse_diagnostics.size(), 1u);
  const ParseDiagnostic& diagnostic = result.stats.parse_diagnostics[0];
  EXPECT_EQ(result.pre_clean.records()[diagnostic.record_index].statement,
            "SELECT broken FROM");
  EXPECT_FALSE(diagnostic.message.empty());
}

TEST(PipelineTest, DiagnosticCapBoundsSamplesNotCounts) {
  log::QueryLog raw;
  for (int i = 0; i < 8; ++i) {
    raw.Append(Make(1000 + i * 100000, "u", StrFormat("SELECT broken%d FROM", i)));
  }
  raw.Renumber();
  PipelineOptions options;
  options.max_parse_diagnostics = 3;
  Pipeline pipeline(options);
  PipelineResult result = pipeline.Run(raw).value();
  EXPECT_EQ(result.stats.syntax_error_count, 8u);
  ASSERT_EQ(result.stats.parse_diagnostics.size(), 3u);
  // Samples are the *first* failures in record order.
  EXPECT_EQ(result.stats.parse_diagnostics[0].record_index, 0u);
  EXPECT_EQ(result.stats.parse_diagnostics[2].record_index, 2u);
}

TEST(PipelineBuilderTest, BuildsConfiguredPipeline) {
  static catalog::Schema schema = catalog::MakeSkyServerSchema();
  MinerOptions miner;
  miner.min_support = 1;
  DetectorOptions detector;
  detector.cth_min_support = 1;
  auto pipeline = PipelineBuilder()
                      .WithSchema(&schema)
                      .WithMiner(miner)
                      .WithDetector(std::move(detector))
                      .NumThreads(2)
                      .ExtraCleanPasses(1)
                      .Build();
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  EXPECT_EQ(pipeline->options().num_threads, 2u);
  EXPECT_EQ(pipeline->options().extra_clean_passes, 1u);
  PipelineResult result = pipeline->Run(CraftedLog()).value();
  EXPECT_EQ(result.stats.final_size, 4u);
  // The schema made it through the builder: Def. 11's key axiom held, so
  // the DW run over objid was detected.
  EXPECT_EQ(result.stats.queries_dw, 4u);
}

TEST(PipelineBuilderTest, RejectsNegativeDedupThreshold) {
  DedupOptions dedup;
  dedup.threshold_ms = -5;
  auto pipeline = PipelineBuilder().WithDedup(dedup).Build();
  ASSERT_FALSE(pipeline.ok());
  EXPECT_EQ(pipeline.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(pipeline.status().message().find("threshold_ms"), std::string::npos);
}

TEST(PipelineBuilderTest, RejectsZeroLengthMinerNGram) {
  MinerOptions miner;
  miner.max_length = 0;
  auto pipeline = PipelineBuilder().WithMiner(miner).Build();
  ASSERT_FALSE(pipeline.ok());
  EXPECT_EQ(pipeline.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(pipeline.status().message().find("max_length"), std::string::npos);
}

TEST(PipelineBuilderTest, RejectsOutOfRangeSwsFraction) {
  SwsOptions sws;
  sws.frequency_fraction = 1.5;
  auto pipeline = PipelineBuilder().WithSws(sws).Build();
  ASSERT_FALSE(pipeline.ok());
  EXPECT_EQ(pipeline.status().code(), StatusCode::kInvalidArgument);
}

TEST(PipelineBuilderTest, RejectsDetectHookLessCustomRule) {
  DetectorOptions detector;
  detector.custom_rules.push_back(CustomRule{});  // no detect hook
  auto pipeline = PipelineBuilder().WithDetector(std::move(detector)).Build();
  ASSERT_FALSE(pipeline.ok());
  EXPECT_EQ(pipeline.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace sqlog::core
