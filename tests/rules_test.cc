#include "core/rules.h"

#include <gtest/gtest.h>

#include "catalog/schema.h"
#include "core/pipeline.h"
#include "util/string_util.h"

namespace sqlog::core {
namespace {

log::LogRecord Make(int64_t t, const char* user, const std::string& sql) {
  log::LogRecord record;
  record.timestamp_ms = t;
  record.user = user;
  record.statement = sql;
  return record;
}

ParsedQuery ParseOne(const std::string& sql) {
  ParsedQuery query;
  auto facts = sql::ParseAndAnalyze(sql);
  EXPECT_TRUE(facts.ok()) << sql;
  query.facts = std::move(facts.value());
  return query;
}

TEST(RulesTest, SelectStarRuleDetects) {
  CustomRule rule = MakeSelectStarRule();
  EXPECT_TRUE(rule.detect(ParseOne("SELECT * FROM t WHERE id = 1")));
  EXPECT_FALSE(rule.detect(ParseOne("SELECT a, b FROM t WHERE id = 1")));
  EXPECT_FALSE(rule.solvable());
}

TEST(RulesTest, MissingWhereRuleDetects) {
  CustomRule rule = MakeMissingWhereRule();
  EXPECT_TRUE(rule.detect(ParseOne("SELECT a FROM t")));
  EXPECT_FALSE(rule.detect(ParseOne("SELECT a FROM t WHERE id = 1")));
  EXPECT_FALSE(rule.detect(ParseOne("SELECT TOP 10 a FROM t")));
  EXPECT_FALSE(rule.detect(ParseOne("SELECT count(*) FROM t")));
  EXPECT_FALSE(rule.detect(ParseOne("SELECT a, count(*) FROM t GROUP BY a")));
  EXPECT_FALSE(rule.detect(ParseOne("SELECT objid FROM fGetNearbyObjEq(1,2,3) n")));
  EXPECT_FALSE(rule.detect(ParseOne("SELECT 1")));
}

TEST(RulesTest, SncRuleMatchesBuiltInBehaviour) {
  CustomRule rule = MakeSncRule();
  ParsedQuery bad = ParseOne("SELECT * FROM Bugs WHERE assigned_to = NULL");
  ParsedQuery good = ParseOne("SELECT * FROM Bugs WHERE assigned_to IS NULL");
  EXPECT_TRUE(rule.detect(bad));
  EXPECT_FALSE(rule.detect(good));
  ASSERT_TRUE(rule.solvable());
  auto rewritten = rule.rewrite(bad);
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ(rewritten.value(), "select * from bugs where assigned_to is null");
}

class RulePipelineTest : public ::testing::Test {
 protected:
  PipelineResult Run(std::vector<CustomRule> rules) {
    log::QueryLog raw;
    raw.Append(Make(1000, "u", "SELECT * FROM photoPrimary WHERE objid = 1"));
    raw.Append(Make(100000000, "u", "SELECT ra FROM photoPrimary"));
    raw.Append(Make(200000000, "u", "SELECT ra, dec FROM photoPrimary WHERE ra > 1"));
    raw.Renumber();
    PipelineOptions options;
    options.miner.min_support = 1;
    options.detector.custom_rules = std::move(rules);
    static catalog::Schema schema = catalog::MakeSkyServerSchema();
    Pipeline pipeline(options);
    pipeline.SetSchema(&schema);
    return pipeline.Run(raw).value();
  }
};

TEST_F(RulePipelineTest, DetectOnlyRuleAnnotatesAndRemoves) {
  PipelineResult result = Run({MakeSelectStarRule(), MakeMissingWhereRule()});
  EXPECT_EQ(result.antipatterns.CountInstances(AntipatternType::kCustom), 2u);
  EXPECT_EQ(result.antipatterns.CountDistinct(AntipatternType::kCustom), 2u);
  // Detect-only hits stay in the clean log but leave the removal log.
  EXPECT_EQ(result.clean_log.size(), 3u);
  EXPECT_EQ(result.removal_log.size(), 1u);
}

TEST_F(RulePipelineTest, DistinctCustomRulesKeepSeparateIdentities) {
  PipelineResult result = Run({MakeSelectStarRule(), MakeMissingWhereRule()});
  int star_rule = -1;
  int where_rule = -1;
  for (const auto& d : result.antipatterns.distinct) {
    if (d.type != AntipatternType::kCustom) continue;
    if (d.custom_rule == 0) star_rule = d.custom_rule;
    if (d.custom_rule == 1) where_rule = d.custom_rule;
  }
  EXPECT_EQ(star_rule, 0);
  EXPECT_EQ(where_rule, 1);
}

TEST_F(RulePipelineTest, SolvableCustomRuleRewritesInPlace) {
  log::QueryLog raw;
  raw.Append(Make(1000, "u", "SELECT * FROM Bugs WHERE assigned_to = NULL"));
  PipelineOptions options;
  options.miner.min_support = 1;
  // Disable the built-in SNC path by using only the custom rule on a
  // fresh pipeline: the built-in SNC will also fire, but the custom
  // rule's rewrite must win or be identical — verify final text.
  options.detector.custom_rules = {MakeSncRule()};
  Pipeline pipeline(options);
  PipelineResult result = pipeline.Run(raw).value();
  ASSERT_EQ(result.clean_log.size(), 1u);
  EXPECT_EQ(result.clean_log.records()[0].statement,
            "select * from bugs where assigned_to is null");
}

TEST_F(RulePipelineTest, NoRulesMeansNoCustomInstances) {
  PipelineResult result = Run({});
  EXPECT_EQ(result.antipatterns.CountInstances(AntipatternType::kCustom), 0u);
}

}  // namespace
}  // namespace sqlog::core
