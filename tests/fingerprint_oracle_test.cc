// Fingerprint-vs-full-parse equivalence at scale: a 100k-record
// generator workload parsed with the template fingerprint cache must be
// observably identical to the uncached parse — serial and sharded, and
// through the batch-incremental streaming parser at several batch
// sizes. (The per-input flavour of this oracle also runs over every
// fuzz corpus entry; see tests/oracles and fuzz_corpus_replay_test.)

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/template_store.h"
#include "log/generator.h"
#include "log/record.h"
#include "util/thread_pool.h"

namespace sqlog {
namespace {

log::QueryLog WorkloadLog() {
  log::GeneratorConfig config;
  config.seed = 63020411;
  config.target_statements = 100000;
  config.human_users = 80;
  return log::GenerateLog(config);
}

/// Serializes every cache-observable field of a parse run — any
/// divergence between cached and uncached runs lands in this string.
std::string Digest(const core::TemplateStore& store, const core::ParsedLog& parsed) {
  std::string out;
  out.reserve(parsed.queries.size() * 128);
  auto add = [&out](const std::string& s) {
    out += s;
    out.push_back('\x1f');
  };
  auto add_n = [&add](uint64_t n) { add(std::to_string(n)); };
  for (const auto& query : parsed.queries) {
    add_n(query.record_index);
    add_n(query.template_id);
    add_n(query.user_id);
    add(query.facts.sc);
    add(query.facts.fc);
    add(query.facts.wc);
    add(query.facts.tmpl.ssc);
    add(query.facts.tmpl.sfc);
    add(query.facts.tmpl.swc);
    add(query.facts.tmpl.tail);
    add_n(query.facts.tmpl.fingerprint);
    add(query.facts.selects_star ? "*" : "-");
    add(query.facts.where_conjunctive ? "&" : "|");
    for (const auto& column : query.facts.selected_columns) add(column);
    for (const auto& table : query.facts.tables) add(table);
    for (const auto& fn : query.facts.table_functions) add(fn);
    for (const auto& pred : query.facts.predicates) {
      add(sql::PredicateOpName(pred.op));
      add(pred.qualifier);
      add(pred.column);
      for (const auto& value : pred.values) add(value);
      add(pred.constant_comparison ? "c" : "-");
      add(pred.compares_to_null_literal ? "n" : "-");
    }
    out.push_back('\n');
  }
  add_n(parsed.non_select_count);
  add_n(parsed.syntax_error_count);
  for (const auto& diag : parsed.diagnostics) {
    add_n(diag.record_index);
    add_n(diag.record_seq);
    add(diag.message);
  }
  for (const auto& stream : parsed.user_streams) {
    for (size_t index : stream) add_n(index);
    out.push_back(';');
  }
  for (const auto& name : parsed.user_names) add(name);
  for (const auto& info : store.templates()) {
    add_n(info.id);
    add_n(info.frequency);
    add_n(info.first_query);
    add(info.tmpl.ssc);
    add(info.tmpl.sfc);
    add(info.tmpl.swc);
    add(info.tmpl.tail);
    std::vector<uint32_t> users(info.users.begin(), info.users.end());
    std::sort(users.begin(), users.end());
    for (uint32_t user : users) add_n(user);
    out.push_back('\n');
  }
  return out;
}

TEST(FingerprintOracleTest, CachedParseIsObservablyIdenticalAtScale) {
  const log::QueryLog raw = WorkloadLog();

  core::ParseCacheOptions off;
  off.enabled = false;
  core::TemplateStore reference_store;
  core::ParsedLog reference =
      core::ParseLog(raw, reference_store, nullptr, /*max_diagnostics=*/16, off);
  const std::string want = Digest(reference_store, reference);
  ASSERT_FALSE(reference.queries.empty());

  {
    core::TemplateStore store;
    core::ParsedLog cached =
        core::ParseLog(raw, store, nullptr, /*max_diagnostics=*/16, {});
    EXPECT_EQ(Digest(store, cached), want) << "serial cached parse diverged";
    // The generator workload is template-heavy: the cache must be doing
    // real work, not vacuously passing because nothing hit.
    EXPECT_GT(cached.parse_stats.parses_avoided(), cached.queries.size() / 2)
        << "cache hit rate collapsed";
    EXPECT_LT(cached.parse_stats.full_parses, reference.parse_stats.full_parses);
  }
  {
    util::ThreadPool pool(8);
    core::TemplateStore store;
    core::ParsedLog cached =
        core::ParseLog(raw, store, &pool, /*max_diagnostics=*/16, {});
    EXPECT_EQ(Digest(store, cached), want) << "8-thread cached parse diverged";
    EXPECT_GT(cached.parse_stats.parses_avoided(), 0u);
  }
}

TEST(FingerprintOracleTest, StreamingCachedParseMatchesAtAnyBatchSize) {
  log::GeneratorConfig config;
  config.seed = 63020412;
  config.target_statements = 4000;
  const log::QueryLog raw = log::GenerateLog(config);

  core::ParseCacheOptions off;
  off.enabled = false;
  core::TemplateStore reference_store;
  core::ParsedLog reference =
      core::ParseLog(raw, reference_store, nullptr, /*max_diagnostics=*/16, off);
  // The streaming parser releases ASTs and therefore compares through
  // the same AST-free digest.
  const std::string want = Digest(reference_store, reference);

  util::ThreadPool pool(8);
  for (size_t batch_size : {size_t{1}, size_t{4096}, raw.size()}) {
    for (util::ThreadPool* shards : {static_cast<util::ThreadPool*>(nullptr), &pool}) {
      SCOPED_TRACE("batch=" + std::to_string(batch_size) +
                   " pool=" + (shards ? "8" : "none"));
      core::TemplateStore store;
      core::StreamingParser parser(store, /*max_diagnostics=*/16, shards, {});
      std::vector<log::LogRecord> batch;
      for (size_t i = 0; i < raw.size(); ++i) {
        batch.push_back(raw.records()[i]);
        if (batch.size() == batch_size) {
          parser.FeedBatch(batch);
          batch.clear();
        }
      }
      if (!batch.empty()) parser.FeedBatch(batch);
      core::ParsedLog streamed = parser.Finish();
      EXPECT_EQ(Digest(store, streamed), want);
      if (batch_size > 1) {
        EXPECT_GT(streamed.parse_stats.parses_avoided(), 0u);
      }
    }
  }
}

}  // namespace
}  // namespace sqlog
