#include "log/generator.h"

#include <gtest/gtest.h>

#include <map>
#include <unordered_map>

#include "sql/ast.h"
#include "sql/skeleton.h"

namespace sqlog::log {
namespace {

GeneratorConfig SmallConfig() {
  GeneratorConfig config;
  config.target_statements = 8000;
  config.cth_families = 8;
  return config;
}

TEST(GeneratorTest, DeterministicForSameSeed) {
  QueryLog a = GenerateLog(SmallConfig());
  QueryLog b = GenerateLog(SmallConfig());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.records()[i].statement, b.records()[i].statement);
    EXPECT_EQ(a.records()[i].timestamp_ms, b.records()[i].timestamp_ms);
    EXPECT_EQ(a.records()[i].user, b.records()[i].user);
  }
}

TEST(GeneratorTest, DifferentSeedsProduceDifferentLogs) {
  GeneratorConfig config = SmallConfig();
  QueryLog a = GenerateLog(config);
  config.seed = 999;
  QueryLog b = GenerateLog(config);
  bool any_difference = a.size() != b.size();
  for (size_t i = 0; !any_difference && i < a.size(); ++i) {
    any_difference = a.records()[i].statement != b.records()[i].statement;
  }
  EXPECT_TRUE(any_difference);
}

TEST(GeneratorTest, ReachesTargetSizeApproximately) {
  QueryLog log = GenerateLog(SmallConfig());
  EXPECT_GE(log.size(), 8000u);
  EXPECT_LE(log.size(), 10000u);  // quota overshoot is bounded
}

TEST(GeneratorTest, TimeSortedAndRenumbered) {
  QueryLog log = GenerateLog(SmallConfig());
  for (size_t i = 1; i < log.size(); ++i) {
    EXPECT_LE(log.records()[i - 1].timestamp_ms, log.records()[i].timestamp_ms);
    EXPECT_EQ(log.records()[i].seq, i);
  }
}

TEST(GeneratorTest, EveryFamilyIsRepresented) {
  QueryLog log = GenerateLog(SmallConfig());
  std::map<TruthLabel, size_t> counts;
  for (const auto& record : log.records()) ++counts[record.truth];
  for (TruthLabel label :
       {TruthLabel::kOrganic, TruthLabel::kDwStifle, TruthLabel::kDsStifle,
        TruthLabel::kDfStifle, TruthLabel::kCthReal, TruthLabel::kCthFalse,
        TruthLabel::kSws, TruthLabel::kSnc, TruthLabel::kDuplicate, TruthLabel::kNoise}) {
    EXPECT_GT(counts[label], 0u) << TruthLabelName(label);
  }
}

TEST(GeneratorTest, MixSharesRoughlyMatchConfig) {
  GeneratorConfig config = SmallConfig();
  config.target_statements = 30000;
  QueryLog log = GenerateLog(config);
  std::map<TruthLabel, double> share;
  for (const auto& record : log.records()) share[record.truth] += 1.0;
  for (auto& [label, count] : share) count /= static_cast<double>(log.size());

  EXPECT_NEAR(share[TruthLabel::kDwStifle], config.frac_dw_stifle, 0.04);
  EXPECT_NEAR(share[TruthLabel::kSws], config.frac_sws, 0.05);
  EXPECT_NEAR(share[TruthLabel::kDuplicate], config.duplicate_prob, 0.02);
}

TEST(GeneratorTest, DuplicatesFollowTheirOriginalImmediately) {
  QueryLog log = GenerateLog(SmallConfig());
  // For every duplicate record, the same user must have issued the same
  // statement within ~1s before it.
  std::unordered_map<std::string, std::pair<std::string, int64_t>> last_by_user;
  size_t checked = 0;
  for (const auto& record : log.records()) {
    if (record.truth == TruthLabel::kDuplicate) {
      auto it = last_by_user.find(record.user);
      ASSERT_NE(it, last_by_user.end());
      EXPECT_EQ(it->second.first, record.statement);
      EXPECT_LE(record.timestamp_ms - it->second.second, 1000);
      ++checked;
    }
    last_by_user[record.user] = {record.statement, record.timestamp_ms};
  }
  EXPECT_GT(checked, 50u);
}

TEST(GeneratorTest, PerUserTimestampsStrictlyIncrease) {
  QueryLog log = GenerateLog(SmallConfig());
  std::unordered_map<std::string, int64_t> last;
  for (const auto& record : log.records()) {
    auto it = last.find(record.user);
    if (it != last.end()) {
      EXPECT_GT(record.timestamp_ms, it->second) << record.user;
    }
    last[record.user] = record.timestamp_ms;
  }
}

TEST(GeneratorTest, SelectStatementsParse) {
  QueryLog log = GenerateLog(SmallConfig());
  size_t failures = 0;
  size_t select_count = 0;
  for (const auto& record : log.records()) {
    if (record.truth == TruthLabel::kNoise) continue;  // broken on purpose
    if (sql::ClassifyStatement(record.statement) != sql::StatementKind::kSelect) continue;
    ++select_count;
    if (!sql::ParseAndAnalyze(record.statement).ok()) ++failures;
  }
  EXPECT_EQ(failures, 0u);
  EXPECT_GT(select_count, 7000u);
}

TEST(GeneratorTest, NoiseContainsDmlAndBrokenStatements) {
  QueryLog log = GenerateLog(SmallConfig());
  size_t non_select = 0;
  size_t broken_select = 0;
  for (const auto& record : log.records()) {
    if (record.truth != TruthLabel::kNoise) continue;
    if (sql::ClassifyStatement(record.statement) != sql::StatementKind::kSelect) {
      ++non_select;
    } else if (!sql::ParseAndAnalyze(record.statement).ok()) {
      ++broken_select;
    }
  }
  EXPECT_GT(non_select, 0u);
  EXPECT_GT(broken_select, 0u);
}

TEST(GeneratorTest, SwsFamiliesAreSingleUser) {
  QueryLog log = GenerateLog(SmallConfig());
  // Group SWS queries by template (via skeleton) and check 1 user each.
  std::unordered_map<std::string, std::unordered_map<std::string, int>> users_by_template;
  for (const auto& record : log.records()) {
    if (record.truth != TruthLabel::kSws) continue;
    auto facts = sql::ParseAndAnalyze(record.statement);
    ASSERT_TRUE(facts.ok());
    users_by_template[facts->tmpl.ssc][record.user]++;
  }
  // Small logs only exercise a few SWS robots; the invariant is that
  // each robot template maps to exactly one user.
  EXPECT_GE(users_by_template.size(), 2u);
  // sqlog-lint: deterministic-merge(order only feeds independent per-key assertions, never output or hashed state)
  for (const auto& [tmpl, users] : users_by_template) {
    EXPECT_EQ(users.size(), 1u) << tmpl;
  }
}

TEST(GeneratorTest, StifleQueriesHaveSingleEqualityOnKey) {
  QueryLog log = GenerateLog(SmallConfig());
  size_t checked = 0;
  for (const auto& record : log.records()) {
    if (record.truth != TruthLabel::kDwStifle) continue;
    auto facts = sql::ParseAndAnalyze(record.statement);
    ASSERT_TRUE(facts.ok());
    ASSERT_EQ(facts->predicate_count(), 1);
    EXPECT_EQ(facts->predicates[0].op, sql::PredicateOp::kEq);
    EXPECT_EQ(facts->predicates[0].column, "objid");
    if (++checked > 200) break;
  }
  EXPECT_GT(checked, 100u);
}

}  // namespace
}  // namespace sqlog::log
