#include "sql/lexer.h"

#include <gtest/gtest.h>

#include <clocale>
#include <string>

#include "util/byte_class.h"

namespace sqlog::sql {
namespace {

TokenStream MustLex(std::string_view s) {
  auto tokens = Lex(s);
  EXPECT_TRUE(tokens.ok()) << tokens.status().ToString();
  return tokens.ok() ? std::move(tokens.value()) : TokenStream{};
}

TEST(LexerTest, EmptyInputYieldsEndToken) {
  auto tokens = MustLex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::kEnd);
}

TEST(LexerTest, Identifiers) {
  auto tokens = MustLex("photoPrimary _tmp x1 #temp");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0].text, "photoPrimary");
  EXPECT_EQ(tokens[1].text, "_tmp");
  EXPECT_EQ(tokens[2].text, "x1");
  EXPECT_EQ(tokens[3].text, "#temp");
  for (int i = 0; i < 4; ++i) EXPECT_EQ(tokens[i].type, TokenType::kIdentifier);
}

TEST(LexerTest, BracketedAndQuotedIdentifiers) {
  auto tokens = MustLex("[My Table] \"other name\"");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[0].text, "My Table");
  EXPECT_EQ(tokens[1].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[1].text, "other name");
}

TEST(LexerTest, StringLiteralWithEscape) {
  auto tokens = MustLex("'it''s'");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].type, TokenType::kString);
  EXPECT_EQ(tokens[0].text, "it's");
}

TEST(LexerTest, UnterminatedStringIsError) {
  EXPECT_FALSE(Lex("'oops").ok());
  EXPECT_FALSE(Lex("[oops").ok());
  EXPECT_FALSE(Lex("\"oops").ok());
}

struct NumberCase {
  const char* input;
  const char* expected;
};

class LexerNumberTest : public ::testing::TestWithParam<NumberCase> {};

TEST_P(LexerNumberTest, LexesNumber) {
  auto tokens = MustLex(GetParam().input);
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].type, TokenType::kNumber);
  EXPECT_EQ(tokens[0].text, GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(Numbers, LexerNumberTest,
                         ::testing::Values(NumberCase{"42", "42"},
                                           NumberCase{"0.5", "0.5"},
                                           NumberCase{".25", ".25"},
                                           NumberCase{"1e9", "1e9"},
                                           NumberCase{"1.5E-3", "1.5E-3"},
                                           NumberCase{"2e+4", "2e+4"},
                                           NumberCase{"0x1F", "0x1F"},
                                           NumberCase{"587722981742", "587722981742"}));

TEST(LexerTest, ExponentFollowedByIdentifierIsNotExponent) {
  // `1 error` must not swallow the 'e'.
  auto tokens = MustLex("1error");
  ASSERT_GE(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].type, TokenType::kNumber);
  EXPECT_EQ(tokens[0].text, "1");
  EXPECT_EQ(tokens[1].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[1].text, "error");
}

TEST(LexerTest, Variables) {
  auto tokens = MustLex("@ra @dec");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].type, TokenType::kVariable);
  EXPECT_EQ(tokens[0].text, "ra");
  EXPECT_EQ(tokens[1].text, "dec");
}

TEST(LexerTest, BareAtSignIsError) {
  EXPECT_FALSE(Lex("@ ").ok());
}

TEST(LexerTest, Operators) {
  auto tokens = MustLex("= <> != < <= > >= + - * / % . , ; ( )");
  std::vector<TokenType> expected = {
      TokenType::kEq,      TokenType::kNotEq,   TokenType::kNotEq, TokenType::kLess,
      TokenType::kLessEq,  TokenType::kGreater, TokenType::kGreaterEq,
      TokenType::kPlus,    TokenType::kMinus,   TokenType::kStar,  TokenType::kSlash,
      TokenType::kPercent, TokenType::kDot,     TokenType::kComma, TokenType::kSemicolon,
      TokenType::kLParen,  TokenType::kRParen,  TokenType::kEnd};
  ASSERT_EQ(tokens.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(tokens[i].type, expected[i]) << i;
  }
}

TEST(LexerTest, LineCommentsAreSkipped) {
  auto tokens = MustLex("SELECT -- comment here\n x");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "SELECT");
  EXPECT_EQ(tokens[1].text, "x");
}

TEST(LexerTest, BlockCommentsAreSkipped) {
  auto tokens = MustLex("a /* multi\nline */ b");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
}

TEST(LexerTest, UnterminatedBlockCommentIsError) {
  EXPECT_FALSE(Lex("a /* oops").ok());
}

TEST(LexerTest, OffsetsPointIntoInput) {
  auto tokens = MustLex("ab  cd");
  EXPECT_EQ(tokens[0].offset, 0u);
  EXPECT_EQ(tokens[1].offset, 4u);
}

TEST(LexerTest, UnexpectedCharacterIsError) {
  auto result = Lex("a ? b");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), sqlog::StatusCode::kParseError);
}

TEST(LexerTest, FullStatement) {
  auto tokens = MustLex(
      "SELECT p.objID FROM fGetObjFromRect(1.0, 2.0, 3.0, 4.0) n, photoPrimary p "
      "WHERE n.objID = p.objID and r between 14 and 17");
  // Spot-check shape: first, a keyword identifier; contains 4 numbers in
  // the function call, ends with kEnd.
  EXPECT_EQ(tokens.front().text, "SELECT");
  EXPECT_EQ(tokens.back().type, TokenType::kEnd);
  int numbers = 0;
  for (const auto& token : tokens) {
    if (token.type == TokenType::kNumber) ++numbers;
  }
  EXPECT_EQ(numbers, 6);
}

/// Lexes `input` under the named locale, restoring the previous locale
/// afterwards, and reports whether lexing succeeded.
bool LexOkUnderLocale(const char* locale_name, std::string_view input) {
  std::string saved = std::setlocale(LC_ALL, nullptr);
  std::setlocale(LC_ALL, locale_name);
  bool ok = Lex(input).ok();
  std::setlocale(LC_ALL, saved.c_str());
  return ok;
}

// Regression for the locale-dependent classification bug: the lexer
// used std::isalpha/isalnum, whose verdict on bytes >= 0x80 depends on
// the global locale — under an 8-bit or UTF-8 locale a high byte could
// start an "identifier" that the C locale rejects, so the same log
// parsed differently depending on the host environment. Classification
// now goes through the locale-independent byte class table; high-byte
// input must lex identically (here: to a parse error, since no token
// starts with 0xE9) whatever the environment locale is.
TEST(LexerTest, HighByteClassificationIgnoresLocale) {
  const std::string input = "caf\xE9 = 1";
  const bool c_locale_verdict = LexOkUnderLocale("C", input);
  EXPECT_FALSE(c_locale_verdict);
  // "" = the environment's locale; also pin the UTF-8 locale explicitly
  // (the container ships C.utf8 — setlocale leaves the locale unchanged
  // if it is unavailable, which still exercises the "" path).
  EXPECT_EQ(c_locale_verdict, LexOkUnderLocale("", input));
  EXPECT_EQ(c_locale_verdict, LexOkUnderLocale("C.utf8", input));
}

TEST(LexerTest, HighBytesInsideStringsLexUnderAnyLocale) {
  const std::string input = "SELECT '\xC3\xA9\x80\xFF' FROM t";
  std::string saved = std::setlocale(LC_ALL, nullptr);
  std::setlocale(LC_ALL, "");
  auto tokens = MustLex(input);
  std::setlocale(LC_ALL, saved.c_str());
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_EQ(tokens[1].type, TokenType::kString);
  EXPECT_EQ(tokens[1].text, "\xC3\xA9\x80\xFF");
}

// The class table itself, checked against the explicit C-locale truth
// for all 256 byte values — this is the contract every kernel and the
// lexer build on, independent of <cctype> and the global locale.
TEST(LexerTest, ByteClassTableMatchesCLocaleForAllBytes) {
  for (int b = 0; b < 256; ++b) {
    const char c = static_cast<char>(b);
    const bool space = b == ' ' || b == '\t' || b == '\n' || b == '\v' || b == '\f' ||
                       b == '\r';
    const bool digit = b >= '0' && b <= '9';
    const bool alpha = (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z');
    const bool hex = digit || (b >= 'a' && b <= 'f') || (b >= 'A' && b <= 'F');
    EXPECT_EQ(IsSpaceByte(c), space) << "byte " << b;
    EXPECT_EQ(IsDigitByte(c), digit) << "byte " << b;
    EXPECT_EQ(IsAlphaByte(c), alpha) << "byte " << b;
    EXPECT_EQ(IsHexDigitByte(c), hex) << "byte " << b;
    EXPECT_EQ(IsAlnumByte(c), alpha || digit) << "byte " << b;
    EXPECT_EQ(IsIdentStartByte(c), alpha || b == '_' || b == '#') << "byte " << b;
    EXPECT_EQ(IsIdentCharByte(c), alpha || digit || b == '_' || b == '$' || b == '#')
        << "byte " << b;
    const char lower = (b >= 'A' && b <= 'Z') ? static_cast<char>(b + 32) : c;
    const char upper = (b >= 'a' && b <= 'z') ? static_cast<char>(b - 32) : c;
    EXPECT_EQ(ToLowerByte(c), lower) << "byte " << b;
    EXPECT_EQ(ToUpperByte(c), upper) << "byte " << b;
  }
}

}  // namespace
}  // namespace sqlog::sql
