#include "sql/lexer.h"

#include <gtest/gtest.h>

namespace sqlog::sql {
namespace {

TokenStream MustLex(std::string_view s) {
  auto tokens = Lex(s);
  EXPECT_TRUE(tokens.ok()) << tokens.status().ToString();
  return tokens.ok() ? std::move(tokens.value()) : TokenStream{};
}

TEST(LexerTest, EmptyInputYieldsEndToken) {
  auto tokens = MustLex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::kEnd);
}

TEST(LexerTest, Identifiers) {
  auto tokens = MustLex("photoPrimary _tmp x1 #temp");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0].text, "photoPrimary");
  EXPECT_EQ(tokens[1].text, "_tmp");
  EXPECT_EQ(tokens[2].text, "x1");
  EXPECT_EQ(tokens[3].text, "#temp");
  for (int i = 0; i < 4; ++i) EXPECT_EQ(tokens[i].type, TokenType::kIdentifier);
}

TEST(LexerTest, BracketedAndQuotedIdentifiers) {
  auto tokens = MustLex("[My Table] \"other name\"");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[0].text, "My Table");
  EXPECT_EQ(tokens[1].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[1].text, "other name");
}

TEST(LexerTest, StringLiteralWithEscape) {
  auto tokens = MustLex("'it''s'");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].type, TokenType::kString);
  EXPECT_EQ(tokens[0].text, "it's");
}

TEST(LexerTest, UnterminatedStringIsError) {
  EXPECT_FALSE(Lex("'oops").ok());
  EXPECT_FALSE(Lex("[oops").ok());
  EXPECT_FALSE(Lex("\"oops").ok());
}

struct NumberCase {
  const char* input;
  const char* expected;
};

class LexerNumberTest : public ::testing::TestWithParam<NumberCase> {};

TEST_P(LexerNumberTest, LexesNumber) {
  auto tokens = MustLex(GetParam().input);
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].type, TokenType::kNumber);
  EXPECT_EQ(tokens[0].text, GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(Numbers, LexerNumberTest,
                         ::testing::Values(NumberCase{"42", "42"},
                                           NumberCase{"0.5", "0.5"},
                                           NumberCase{".25", ".25"},
                                           NumberCase{"1e9", "1e9"},
                                           NumberCase{"1.5E-3", "1.5E-3"},
                                           NumberCase{"2e+4", "2e+4"},
                                           NumberCase{"0x1F", "0x1F"},
                                           NumberCase{"587722981742", "587722981742"}));

TEST(LexerTest, ExponentFollowedByIdentifierIsNotExponent) {
  // `1 error` must not swallow the 'e'.
  auto tokens = MustLex("1error");
  ASSERT_GE(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].type, TokenType::kNumber);
  EXPECT_EQ(tokens[0].text, "1");
  EXPECT_EQ(tokens[1].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[1].text, "error");
}

TEST(LexerTest, Variables) {
  auto tokens = MustLex("@ra @dec");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].type, TokenType::kVariable);
  EXPECT_EQ(tokens[0].text, "ra");
  EXPECT_EQ(tokens[1].text, "dec");
}

TEST(LexerTest, BareAtSignIsError) {
  EXPECT_FALSE(Lex("@ ").ok());
}

TEST(LexerTest, Operators) {
  auto tokens = MustLex("= <> != < <= > >= + - * / % . , ; ( )");
  std::vector<TokenType> expected = {
      TokenType::kEq,      TokenType::kNotEq,   TokenType::kNotEq, TokenType::kLess,
      TokenType::kLessEq,  TokenType::kGreater, TokenType::kGreaterEq,
      TokenType::kPlus,    TokenType::kMinus,   TokenType::kStar,  TokenType::kSlash,
      TokenType::kPercent, TokenType::kDot,     TokenType::kComma, TokenType::kSemicolon,
      TokenType::kLParen,  TokenType::kRParen,  TokenType::kEnd};
  ASSERT_EQ(tokens.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(tokens[i].type, expected[i]) << i;
  }
}

TEST(LexerTest, LineCommentsAreSkipped) {
  auto tokens = MustLex("SELECT -- comment here\n x");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "SELECT");
  EXPECT_EQ(tokens[1].text, "x");
}

TEST(LexerTest, BlockCommentsAreSkipped) {
  auto tokens = MustLex("a /* multi\nline */ b");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
}

TEST(LexerTest, UnterminatedBlockCommentIsError) {
  EXPECT_FALSE(Lex("a /* oops").ok());
}

TEST(LexerTest, OffsetsPointIntoInput) {
  auto tokens = MustLex("ab  cd");
  EXPECT_EQ(tokens[0].offset, 0u);
  EXPECT_EQ(tokens[1].offset, 4u);
}

TEST(LexerTest, UnexpectedCharacterIsError) {
  auto result = Lex("a ? b");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), sqlog::StatusCode::kParseError);
}

TEST(LexerTest, FullStatement) {
  auto tokens = MustLex(
      "SELECT p.objID FROM fGetObjFromRect(1.0, 2.0, 3.0, 4.0) n, photoPrimary p "
      "WHERE n.objID = p.objID and r between 14 and 17");
  // Spot-check shape: first, a keyword identifier; contains 4 numbers in
  // the function call, ends with kEnd.
  EXPECT_EQ(tokens.front().text, "SELECT");
  EXPECT_EQ(tokens.back().type, TokenType::kEnd);
  int numbers = 0;
  for (const auto& token : tokens) {
    if (token.type == TokenType::kNumber) ++numbers;
  }
  EXPECT_EQ(numbers, 6);
}

}  // namespace
}  // namespace sqlog::sql
