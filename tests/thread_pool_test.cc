#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace sqlog::util {
namespace {

TEST(ResolveThreadCountTest, ZeroMeansHardwareConcurrency) {
  EXPECT_GE(ResolveThreadCount(0), 1u);
  EXPECT_EQ(ResolveThreadCount(1), 1u);
  EXPECT_EQ(ResolveThreadCount(7), 7u);
}

TEST(ShardRangeTest, ShardsAreContiguousAndCoverEverything) {
  for (size_t n : {0u, 1u, 7u, 8u, 100u}) {
    for (size_t shards : {1u, 3u, 8u, 13u}) {
      size_t expected_begin = 0;
      for (size_t s = 0; s < shards; ++s) {
        auto [begin, end] = ShardRange(n, s, shards);
        EXPECT_EQ(begin, expected_begin) << "n=" << n << " shards=" << shards;
        EXPECT_LE(begin, end);
        // Near-equal: sizes differ by at most one.
        EXPECT_LE(end - begin, n / shards + 1);
        expected_begin = end;
      }
      EXPECT_EQ(expected_begin, n);
    }
  }
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks) {
  std::atomic<int> executed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&executed] { executed.fetch_add(1); });
    }
    // Destructor runs here: every queued task must still execute.
  }
  EXPECT_EQ(executed.load(), 100);
}

TEST(ThreadPoolTest, ImmediateShutdownIsClean) {
  ThreadPool pool(4);
  // No tasks at all — destruction alone must not hang or crash.
}

TEST(ThreadPoolTest, ParallelForEmptyRangeReturnsImmediately) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.ParallelFor(5, 5, 1, [&](size_t, size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> touched(kN);
  pool.ParallelFor(0, kN, 64, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) touched[i].fetch_add(1);
  });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(touched[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForWorksWithZeroWorkers) {
  // A pool of 0 workers degenerates to the caller doing all chunks.
  ThreadPool pool(0);
  std::atomic<size_t> sum{0};
  pool.ParallelFor(0, 100, 10, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // Every outer chunk issues an inner ParallelFor on the same pool. The
  // cooperative design (callers execute chunks themselves) guarantees
  // progress even when all workers sit inside outer chunks.
  ThreadPool pool(2);
  constexpr size_t kOuter = 16;
  constexpr size_t kInner = 200;
  std::atomic<size_t> total{0};
  pool.ParallelFor(0, kOuter, 1, [&](size_t begin, size_t end) {
    for (size_t o = begin; o < end; ++o) {
      pool.ParallelFor(0, kInner, 16, [&](size_t ib, size_t ie) {
        total.fetch_add(ie - ib);
      });
    }
  });
  EXPECT_EQ(total.load(), kOuter * kInner);
}

TEST(MapShardsTest, SerialAndParallelProduceIdenticalShardResults) {
  constexpr size_t kN = 1000;
  auto shard_sum = [](size_t, size_t begin, size_t end) {
    size_t sum = 0;
    for (size_t i = begin; i < end; ++i) sum += i;
    return sum;
  };
  std::vector<size_t> serial = MapShards<size_t>(nullptr, kN, 8, shard_sum);
  ThreadPool pool(3);
  std::vector<size_t> parallel = MapShards<size_t>(&pool, kN, 8, shard_sum);
  EXPECT_EQ(serial, parallel);
  size_t total = std::accumulate(serial.begin(), serial.end(), size_t{0});
  EXPECT_EQ(total, kN * (kN - 1) / 2);
}

}  // namespace
}  // namespace sqlog::util
