#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace sqlog::util {
namespace {

TEST(ResolveThreadCountTest, ZeroMeansHardwareConcurrency) {
  EXPECT_GE(ResolveThreadCount(0), 1u);
  EXPECT_EQ(ResolveThreadCount(1), 1u);
  EXPECT_EQ(ResolveThreadCount(7), 7u);
}

TEST(ShardRangeTest, ShardsAreContiguousAndCoverEverything) {
  for (size_t n : {0u, 1u, 7u, 8u, 100u}) {
    for (size_t shards : {1u, 3u, 8u, 13u}) {
      size_t expected_begin = 0;
      for (size_t s = 0; s < shards; ++s) {
        auto [begin, end] = ShardRange(n, s, shards);
        EXPECT_EQ(begin, expected_begin) << "n=" << n << " shards=" << shards;
        EXPECT_LE(begin, end);
        // Near-equal: sizes differ by at most one.
        EXPECT_LE(end - begin, n / shards + 1);
        expected_begin = end;
      }
      EXPECT_EQ(expected_begin, n);
    }
  }
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks) {
  std::atomic<int> executed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&executed] { executed.fetch_add(1); });
    }
    // Destructor runs here: every queued task must still execute.
  }
  EXPECT_EQ(executed.load(), 100);
}

TEST(ThreadPoolTest, ImmediateShutdownIsClean) {
  ThreadPool pool(4);
  // No tasks at all — destruction alone must not hang or crash.
}

TEST(ThreadPoolTest, ParallelForEmptyRangeReturnsImmediately) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.ParallelFor(5, 5, 1, [&](size_t, size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> touched(kN);
  pool.ParallelFor(0, kN, 64, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) touched[i].fetch_add(1);
  });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(touched[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForWorksWithZeroWorkers) {
  // A pool of 0 workers degenerates to the caller doing all chunks.
  ThreadPool pool(0);
  std::atomic<size_t> sum{0};
  pool.ParallelFor(0, 100, 10, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // Every outer chunk issues an inner ParallelFor on the same pool. The
  // cooperative design (callers execute chunks themselves) guarantees
  // progress even when all workers sit inside outer chunks.
  ThreadPool pool(2);
  constexpr size_t kOuter = 16;
  constexpr size_t kInner = 200;
  std::atomic<size_t> total{0};
  pool.ParallelFor(0, kOuter, 1, [&](size_t begin, size_t end) {
    for (size_t o = begin; o < end; ++o) {
      pool.ParallelFor(0, kInner, 16, [&](size_t ib, size_t ie) {
        total.fetch_add(ie - ib);
      });
    }
  });
  EXPECT_EQ(total.load(), kOuter * kInner);
}

TEST(ThreadPoolTest, ParallelForSingleItemRunsExactlyOnce) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  std::atomic<size_t> seen_begin{999}, seen_end{999};
  pool.ParallelFor(7, 8, 1, [&](size_t begin, size_t end) {
    calls.fetch_add(1);
    seen_begin.store(begin);
    seen_end.store(end);
  });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(seen_begin.load(), 7u);
  EXPECT_EQ(seen_end.load(), 8u);
}

TEST(ThreadPoolTest, ThrowingBodyPropagatesToTheCallerWithoutDeadlock) {
  ThreadPool pool(3);
  // Repeat many times: the throw may land on a worker or on the
  // cooperative caller, and either way it must surface here.
  for (int round = 0; round < 50; ++round) {
    std::atomic<size_t> processed{0};
    bool caught = false;
    try {
      pool.ParallelFor(0, 1000, 1, [&](size_t begin, size_t end) {
        if (begin <= 500 && 500 < end) throw std::runtime_error("boom");
        processed.fetch_add(end - begin);
      });
    } catch (const std::runtime_error& e) {
      caught = true;
      EXPECT_STREQ(e.what(), "boom");
    }
    EXPECT_TRUE(caught) << "round " << round;
    // Cancellation means not every index ran, but the pool is intact —
    // the next round (and this follow-up) reuse it.
    EXPECT_LT(processed.load(), 1000u);
  }
  std::atomic<size_t> after{0};
  pool.ParallelFor(0, 100, 1, [&](size_t b, size_t e) { after.fetch_add(e - b); });
  EXPECT_EQ(after.load(), 100u);
}

TEST(ThreadPoolTest, ThrowOnTheSerialPathPropagatesToo) {
  // n <= min_grain short-circuits to a direct body call in the caller.
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.ParallelFor(0, 4, 8, [](size_t, size_t) { throw std::logic_error("x"); }),
      std::logic_error);
}

TEST(MapShardsTest, MoreShardsThanItemsYieldsEmptyTailShards) {
  constexpr size_t kN = 3;
  auto shard_extent = [](size_t, size_t begin, size_t end) {
    return std::make_pair(begin, end);
  };
  for (ThreadPool* pool_ptr : {static_cast<ThreadPool*>(nullptr)}) {
    auto ranges = MapShards<std::pair<size_t, size_t>>(pool_ptr, kN, 8, shard_extent);
    ASSERT_EQ(ranges.size(), 8u);
    size_t covered = 0;
    for (size_t s = 0; s < ranges.size(); ++s) {
      EXPECT_LE(ranges[s].first, ranges[s].second);
      covered += ranges[s].second - ranges[s].first;
      if (s >= kN) {
        EXPECT_EQ(ranges[s].first, ranges[s].second) << "shard " << s;
      }
    }
    EXPECT_EQ(covered, kN);
  }
  ThreadPool pool(3);
  auto parallel = MapShards<std::pair<size_t, size_t>>(&pool, kN, 8, shard_extent);
  auto serial = MapShards<std::pair<size_t, size_t>>(nullptr, kN, 8, shard_extent);
  EXPECT_EQ(parallel, serial);
}

TEST(MapShardsTest, ZeroItemsStillRunsEveryShardFn) {
  std::atomic<int> calls{0};
  ThreadPool pool(2);
  auto results = MapShards<int>(&pool, 0, 4, [&](size_t, size_t begin, size_t end) {
    calls.fetch_add(1);
    EXPECT_EQ(begin, end);
    return 0;
  });
  EXPECT_EQ(results.size(), 4u);
  EXPECT_EQ(calls.load(), 4);
}

TEST(MapShardsTest, ThrowingShardFnPropagates) {
  ThreadPool pool(2);
  EXPECT_THROW(MapShards<int>(&pool, 100, 4,
                              [](size_t shard, size_t, size_t) -> int {
                                if (shard == 2) throw std::runtime_error("shard");
                                return 1;
                              }),
               std::runtime_error);
}

TEST(MapShardsTest, SerialAndParallelProduceIdenticalShardResults) {
  constexpr size_t kN = 1000;
  auto shard_sum = [](size_t, size_t begin, size_t end) {
    size_t sum = 0;
    for (size_t i = begin; i < end; ++i) sum += i;
    return sum;
  };
  std::vector<size_t> serial = MapShards<size_t>(nullptr, kN, 8, shard_sum);
  ThreadPool pool(3);
  std::vector<size_t> parallel = MapShards<size_t>(&pool, kN, 8, shard_sum);
  EXPECT_EQ(serial, parallel);
  size_t total = std::accumulate(serial.begin(), serial.end(), size_t{0});
  EXPECT_EQ(total, kN * (kN - 1) / 2);
}

}  // namespace
}  // namespace sqlog::util
