// Property tests over the whole generated workload: every parseable
// statement must survive parse → canonical print → parse → print as a
// fixpoint, template fingerprints must be stable across reprints, and
// the pipeline must be fully deterministic.

#include <gtest/gtest.h>

#include "catalog/schema.h"
#include "core/pipeline.h"
#include "fuzz/sql_mutator.h"
#include "log/generator.h"
#include "sql/parser.h"
#include "sql/printer.h"
#include "sql/skeleton.h"
#include "util/random.h"

namespace sqlog {
namespace {

log::QueryLog SmallLog(uint64_t seed) {
  log::GeneratorConfig config;
  config.seed = seed;
  config.target_statements = 6000;
  config.cth_families = 8;
  return log::GenerateLog(config);
}

TEST(RoundTripPropertyTest, CanonicalPrintIsAFixpoint) {
  log::QueryLog raw = SmallLog(1);
  sql::PrintOptions opts;
  size_t checked = 0;
  for (const auto& record : raw.records()) {
    auto first = sql::ParseSelect(record.statement);
    if (!first.ok()) continue;
    std::string printed = Print(*first.value(), opts);
    auto second = sql::ParseSelect(printed);
    ASSERT_TRUE(second.ok()) << "reparse failed for: " << printed;
    EXPECT_EQ(Print(*second.value(), opts), printed) << record.statement;
    ++checked;
  }
  EXPECT_GT(checked, 5000u);
}

TEST(RoundTripPropertyTest, TemplatesSurviveReprinting) {
  log::QueryLog raw = SmallLog(2);
  sql::PrintOptions opts;
  size_t checked = 0;
  for (const auto& record : raw.records()) {
    auto facts = sql::ParseAndAnalyze(record.statement);
    if (!facts.ok()) continue;
    std::string printed = Print(*facts->ast, opts);
    auto reparsed = sql::ParseAndAnalyze(printed);
    ASSERT_TRUE(reparsed.ok()) << printed;
    EXPECT_EQ(facts->tmpl.fingerprint, reparsed->tmpl.fingerprint) << printed;
    EXPECT_EQ(facts->tmpl, reparsed->tmpl);
    ++checked;
  }
  EXPECT_GT(checked, 5000u);
}

TEST(RoundTripPropertyTest, PredicateFeaturesSurviveReprinting) {
  log::QueryLog raw = SmallLog(3);
  sql::PrintOptions opts;
  size_t checked = 0;
  for (const auto& record : raw.records()) {
    auto facts = sql::ParseAndAnalyze(record.statement);
    if (!facts.ok()) continue;
    auto reparsed = sql::ParseAndAnalyze(Print(*facts->ast, opts));
    ASSERT_TRUE(reparsed.ok());
    ASSERT_EQ(facts->predicates.size(), reparsed->predicates.size());
    for (size_t i = 0; i < facts->predicates.size(); ++i) {
      EXPECT_EQ(facts->predicates[i].op, reparsed->predicates[i].op);
      EXPECT_EQ(facts->predicates[i].column, reparsed->predicates[i].column);
      EXPECT_EQ(facts->predicates[i].values, reparsed->predicates[i].values);
    }
    ++checked;
  }
  EXPECT_GT(checked, 5000u);
}

TEST(RoundTripPropertyTest, TemplatesAreInvariantUnderSemanticPreservingMutation) {
  // Def. 4's whole point: the template must not care about whitespace,
  // identifier case, or literal values. Jitter every parseable generated
  // statement with the structure-aware mutator and check the skeleton
  // never moves.
  log::QueryLog raw = SmallLog(5);
  Rng rng(0xD1FFu);
  size_t checked = 0;
  for (const auto& record : raw.records()) {
    auto base = sql::ParseAndAnalyze(record.statement);
    if (!base.ok()) continue;
    for (int round = 0; round < 2; ++round) {
      std::string jittered = fuzz::MutatePreservingTemplate(record.statement, rng);
      auto mutated = sql::ParseAndAnalyze(jittered);
      ASSERT_TRUE(mutated.ok()) << record.statement << " → " << jittered;
      EXPECT_EQ(base->tmpl, mutated->tmpl) << record.statement << " → " << jittered;

      std::string cosmetic =
          fuzz::MutatePreservingCanonicalForm(record.statement, rng);
      auto reparsed = sql::ParseSelect(cosmetic);
      ASSERT_TRUE(reparsed.ok()) << record.statement << " → " << cosmetic;
      EXPECT_EQ(Print(*reparsed.value(), sql::PrintOptions{}),
                Print(*base->ast, sql::PrintOptions{}))
          << record.statement << " → " << cosmetic;
    }
    ++checked;
  }
  EXPECT_GT(checked, 5000u);
}

TEST(RoundTripPropertyTest, PipelineIsDeterministic) {
  log::QueryLog raw = SmallLog(4);
  catalog::Schema schema = catalog::MakeSkyServerSchema();
  core::Pipeline pipeline;
  pipeline.SetSchema(&schema);
  core::PipelineResult a = pipeline.Run(raw).value();
  core::PipelineResult b = pipeline.Run(raw).value();

  EXPECT_EQ(a.stats.final_size, b.stats.final_size);
  EXPECT_EQ(a.stats.pattern_count, b.stats.pattern_count);
  EXPECT_EQ(a.antipatterns.instances.size(), b.antipatterns.instances.size());
  ASSERT_EQ(a.clean_log.size(), b.clean_log.size());
  for (size_t i = 0; i < a.clean_log.size(); ++i) {
    EXPECT_EQ(a.clean_log.records()[i].statement, b.clean_log.records()[i].statement);
  }
  ASSERT_EQ(a.patterns.size(), b.patterns.size());
  for (size_t i = 0; i < a.patterns.size(); ++i) {
    EXPECT_EQ(a.patterns[i].template_ids, b.patterns[i].template_ids);
    EXPECT_EQ(a.patterns[i].frequency, b.patterns[i].frequency);
  }
}

class SeedSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeedSweepTest, PipelineInvariantsHoldAcrossSeeds) {
  log::GeneratorConfig config;
  config.seed = GetParam();
  config.target_statements = 6000;
  config.cth_families = 8;
  log::QueryLog raw = log::GenerateLog(config);

  catalog::Schema schema = catalog::MakeSkyServerSchema();
  core::Pipeline pipeline;
  pipeline.SetSchema(&schema);
  core::PipelineResult result = pipeline.Run(raw).value();

  // Structural invariants that must hold for any workload.
  const auto& stats = result.stats;
  EXPECT_EQ(stats.after_dedup_size + stats.duplicates_removed, stats.original_size);
  EXPECT_EQ(stats.select_count + stats.non_select_count + stats.syntax_error_count,
            stats.after_dedup_size);
  EXPECT_LE(stats.final_size, stats.select_count);
  EXPECT_LE(stats.removal_size, stats.final_size);

  // Every query belongs to at most one claiming instance, and claimed
  // solvable instances partition their queries.
  std::vector<uint32_t> seen_counts(result.antipatterns.instances.size() + 1, 0);
  for (uint32_t id : result.antipatterns.instance_of_query) {
    ASSERT_LE(id, result.antipatterns.instances.size());
    ++seen_counts[id];
  }
  // Clean log parses completely.
  for (const auto& record : result.clean_log.records()) {
    EXPECT_TRUE(sql::ParseAndAnalyze(record.statement).ok()) << record.statement;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweepTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace sqlog
