#include "sql/parser.h"

#include <gtest/gtest.h>

#include "sql/printer.h"

namespace sqlog::sql {
namespace {

StmtPtr MustParse(const std::string& sql) {
  auto parsed = ParseSelect(sql);
  EXPECT_TRUE(parsed.ok()) << sql << " → " << parsed.status().ToString();
  return parsed.ok() ? std::move(parsed.value()) : nullptr;
}

TEST(ParserTest, MinimalSelect) {
  auto stmt = MustParse("SELECT 1");
  ASSERT_NE(stmt, nullptr);
  ASSERT_EQ(stmt->select_items.size(), 1u);
  EXPECT_TRUE(stmt->from_items.empty());
  EXPECT_EQ(stmt->where, nullptr);
}

TEST(ParserTest, SelectListWithAliases) {
  auto stmt = MustParse("SELECT a AS x, b y, c FROM t");
  ASSERT_NE(stmt, nullptr);
  ASSERT_EQ(stmt->select_items.size(), 3u);
  EXPECT_EQ(stmt->select_items[0].alias, "x");
  EXPECT_EQ(stmt->select_items[1].alias, "y");
  EXPECT_EQ(stmt->select_items[2].alias, "");
}

TEST(ParserTest, StarAndQualifiedStar) {
  auto stmt = MustParse("SELECT *, p.* FROM photoPrimary p");
  ASSERT_NE(stmt, nullptr);
  ASSERT_EQ(stmt->select_items.size(), 2u);
  EXPECT_EQ(stmt->select_items[0].expr->kind(), ExprKind::kStar);
  ASSERT_EQ(stmt->select_items[1].expr->kind(), ExprKind::kStar);
  EXPECT_EQ(static_cast<const StarExpr&>(*stmt->select_items[1].expr).qualifier, "p");
}

TEST(ParserTest, DistinctAndTop) {
  auto stmt = MustParse("SELECT DISTINCT TOP 10 a FROM t");
  ASSERT_NE(stmt, nullptr);
  EXPECT_TRUE(stmt->distinct);
  EXPECT_EQ(stmt->top_count, 10);
}

TEST(ParserTest, TopWithParentheses) {
  auto stmt = MustParse("SELECT TOP (5) a FROM t");
  ASSERT_NE(stmt, nullptr);
  EXPECT_EQ(stmt->top_count, 5);
}

TEST(ParserTest, SchemaQualifiedTable) {
  auto stmt = MustParse("SELECT a FROM dbo.SpecObjAll s");
  ASSERT_NE(stmt, nullptr);
  ASSERT_EQ(stmt->from_items.size(), 1u);
  ASSERT_EQ(stmt->from_items[0]->kind(), FromKind::kTable);
  const auto& table = static_cast<const TableRef&>(*stmt->from_items[0]);
  EXPECT_EQ(table.schema, "dbo");
  EXPECT_EQ(table.table, "SpecObjAll");
  EXPECT_EQ(table.alias, "s");
}

TEST(ParserTest, TableValuedFunction) {
  auto stmt = MustParse("SELECT * FROM fGetNearbyObjEq(180.0, 0.5, 1.0) AS n");
  ASSERT_NE(stmt, nullptr);
  ASSERT_EQ(stmt->from_items[0]->kind(), FromKind::kTableFunction);
  const auto& fn = static_cast<const TableFunctionRef&>(*stmt->from_items[0]);
  EXPECT_EQ(fn.name, "fGetNearbyObjEq");
  EXPECT_EQ(fn.alias, "n");
  EXPECT_EQ(fn.args.size(), 3u);
}

TEST(ParserTest, CommaJoin) {
  auto stmt = MustParse("SELECT * FROM a, b, c");
  ASSERT_NE(stmt, nullptr);
  EXPECT_EQ(stmt->from_items.size(), 3u);
}

TEST(ParserTest, InnerJoinChain) {
  auto stmt = MustParse(
      "SELECT * FROM a JOIN b ON a.x = b.x INNER JOIN c ON b.y = c.y");
  ASSERT_NE(stmt, nullptr);
  ASSERT_EQ(stmt->from_items.size(), 1u);
  ASSERT_EQ(stmt->from_items[0]->kind(), FromKind::kJoin);
  const auto& outer = static_cast<const JoinRef&>(*stmt->from_items[0]);
  EXPECT_EQ(outer.join_type, JoinType::kInner);
  EXPECT_EQ(outer.left->kind(), FromKind::kJoin);  // left-deep
}

TEST(ParserTest, LeftOuterJoin) {
  auto stmt = MustParse("SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.x");
  ASSERT_NE(stmt, nullptr);
  const auto& join = static_cast<const JoinRef&>(*stmt->from_items[0]);
  EXPECT_EQ(join.join_type, JoinType::kLeftOuter);
}

TEST(ParserTest, LeftJoinWithoutOuterKeyword) {
  auto stmt = MustParse("SELECT * FROM a LEFT JOIN b ON a.x = b.x");
  ASSERT_NE(stmt, nullptr);
  const auto& join = static_cast<const JoinRef&>(*stmt->from_items[0]);
  EXPECT_EQ(join.join_type, JoinType::kLeftOuter);
}

TEST(ParserTest, CrossJoinHasNoCondition) {
  auto stmt = MustParse("SELECT * FROM a CROSS JOIN b");
  ASSERT_NE(stmt, nullptr);
  const auto& join = static_cast<const JoinRef&>(*stmt->from_items[0]);
  EXPECT_EQ(join.join_type, JoinType::kCross);
  EXPECT_EQ(join.condition, nullptr);
}

TEST(ParserTest, DerivedTable) {
  auto stmt = MustParse(
      "SELECT o.c FROM (SELECT empId, count(orders) as c FROM Orders GROUP BY empId) o");
  ASSERT_NE(stmt, nullptr);
  ASSERT_EQ(stmt->from_items[0]->kind(), FromKind::kSubquery);
  const auto& sub = static_cast<const SubqueryRef&>(*stmt->from_items[0]);
  EXPECT_EQ(sub.alias, "o");
  EXPECT_EQ(sub.subquery->group_by.size(), 1u);
}

TEST(ParserTest, WherePrecedenceAndOverOr) {
  auto stmt = MustParse("SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3");
  ASSERT_NE(stmt, nullptr);
  ASSERT_EQ(stmt->where->kind(), ExprKind::kBinary);
  const auto& root = static_cast<const BinaryExpr&>(*stmt->where);
  EXPECT_EQ(root.op, BinaryOp::kOr);  // AND binds tighter
}

TEST(ParserTest, NotPredicate) {
  auto stmt = MustParse("SELECT a FROM t WHERE NOT x = 1");
  ASSERT_EQ(stmt->where->kind(), ExprKind::kUnary);
  EXPECT_EQ(static_cast<const UnaryExpr&>(*stmt->where).op, UnaryOp::kNot);
}

TEST(ParserTest, BetweenPredicate) {
  auto stmt = MustParse("SELECT a FROM t WHERE r BETWEEN 14 AND 17");
  ASSERT_EQ(stmt->where->kind(), ExprKind::kBetween);
  EXPECT_FALSE(static_cast<const BetweenExpr&>(*stmt->where).negated);
}

TEST(ParserTest, NotBetweenPredicate) {
  auto stmt = MustParse("SELECT a FROM t WHERE r NOT BETWEEN 14 AND 17");
  ASSERT_EQ(stmt->where->kind(), ExprKind::kBetween);
  EXPECT_TRUE(static_cast<const BetweenExpr&>(*stmt->where).negated);
}

TEST(ParserTest, InList) {
  auto stmt = MustParse("SELECT a FROM t WHERE id IN (1, 2, 3)");
  ASSERT_EQ(stmt->where->kind(), ExprKind::kInList);
  EXPECT_EQ(static_cast<const InListExpr&>(*stmt->where).items.size(), 3u);
}

TEST(ParserTest, InSubquery) {
  auto stmt = MustParse("SELECT a FROM t WHERE id IN (SELECT id FROM u)");
  ASSERT_EQ(stmt->where->kind(), ExprKind::kInSubquery);
}

TEST(ParserTest, ExistsPredicate) {
  auto stmt = MustParse("SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u)");
  ASSERT_EQ(stmt->where->kind(), ExprKind::kExists);
}

TEST(ParserTest, IsNullAndIsNotNull) {
  auto stmt = MustParse("SELECT a FROM t WHERE x IS NULL AND y IS NOT NULL");
  const auto& root = static_cast<const BinaryExpr&>(*stmt->where);
  ASSERT_EQ(root.lhs->kind(), ExprKind::kIsNull);
  EXPECT_FALSE(static_cast<const IsNullExpr&>(*root.lhs).negated);
  ASSERT_EQ(root.rhs->kind(), ExprKind::kIsNull);
  EXPECT_TRUE(static_cast<const IsNullExpr&>(*root.rhs).negated);
}

TEST(ParserTest, LikePredicate) {
  auto stmt = MustParse("SELECT a FROM t WHERE name LIKE 'Gal%'");
  ASSERT_EQ(stmt->where->kind(), ExprKind::kLike);
}

TEST(ParserTest, EqualsNullParsesAsComparison) {
  // The SNC antipattern shape must survive parsing (Def. 16).
  auto stmt = MustParse("SELECT * FROM Bugs WHERE assigned_to = NULL");
  ASSERT_EQ(stmt->where->kind(), ExprKind::kBinary);
  const auto& cmp = static_cast<const BinaryExpr&>(*stmt->where);
  ASSERT_EQ(cmp.rhs->kind(), ExprKind::kLiteral);
  EXPECT_EQ(static_cast<const LiteralExpr&>(*cmp.rhs).literal_kind, LiteralKind::kNull);
}

TEST(ParserTest, ArithmeticPrecedence) {
  auto stmt = MustParse("SELECT a + b * c FROM t");
  const auto& root = static_cast<const BinaryExpr&>(*stmt->select_items[0].expr);
  EXPECT_EQ(root.op, BinaryOp::kAdd);
  EXPECT_EQ(static_cast<const BinaryExpr&>(*root.rhs).op, BinaryOp::kMul);
}

TEST(ParserTest, UnaryMinusFoldsIntoNumberLiteral) {
  auto stmt = MustParse("SELECT a FROM t WHERE dec = -12.5");
  const auto& cmp = static_cast<const BinaryExpr&>(*stmt->where);
  ASSERT_EQ(cmp.rhs->kind(), ExprKind::kLiteral);
  EXPECT_DOUBLE_EQ(static_cast<const LiteralExpr&>(*cmp.rhs).number_value, -12.5);
}

TEST(ParserTest, FunctionCallsAndCountStar) {
  auto stmt = MustParse("SELECT count(*), max(r), dbo.fDist(a, b) FROM t");
  ASSERT_EQ(stmt->select_items.size(), 3u);
  const auto& count = static_cast<const FunctionCallExpr&>(*stmt->select_items[0].expr);
  EXPECT_EQ(count.name, "count");
  ASSERT_EQ(count.args.size(), 1u);
  EXPECT_EQ(count.args[0]->kind(), ExprKind::kStar);
  const auto& qualified = static_cast<const FunctionCallExpr&>(*stmt->select_items[2].expr);
  EXPECT_EQ(qualified.name, "dbo.fDist");
}

TEST(ParserTest, CountDistinct) {
  auto stmt = MustParse("SELECT count(DISTINCT objID) FROM t");
  const auto& fn = static_cast<const FunctionCallExpr&>(*stmt->select_items[0].expr);
  EXPECT_TRUE(fn.distinct);
}

TEST(ParserTest, GroupByHavingOrderBy) {
  auto stmt = MustParse(
      "SELECT type, count(*) FROM t GROUP BY type HAVING count(*) > 5 "
      "ORDER BY count(*) DESC, type");
  ASSERT_NE(stmt, nullptr);
  EXPECT_EQ(stmt->group_by.size(), 1u);
  ASSERT_NE(stmt->having, nullptr);
  ASSERT_EQ(stmt->order_by.size(), 2u);
  EXPECT_TRUE(stmt->order_by[0].descending);
  EXPECT_FALSE(stmt->order_by[1].descending);
}

TEST(ParserTest, CaseExpression) {
  auto stmt = MustParse(
      "SELECT CASE WHEN r < 15 THEN 'bright' ELSE 'faint' END FROM t");
  ASSERT_EQ(stmt->select_items[0].expr->kind(), ExprKind::kCase);
  const auto& case_expr = static_cast<const CaseExpr&>(*stmt->select_items[0].expr);
  EXPECT_EQ(case_expr.branches.size(), 1u);
  EXPECT_NE(case_expr.else_value, nullptr);
}

TEST(ParserTest, SimpleCaseNormalizesToSearched) {
  auto stmt = MustParse("SELECT CASE type WHEN 3 THEN 'galaxy' END FROM t");
  const auto& case_expr = static_cast<const CaseExpr&>(*stmt->select_items[0].expr);
  ASSERT_EQ(case_expr.branches.size(), 1u);
  EXPECT_EQ(case_expr.branches[0].condition->kind(), ExprKind::kBinary);
}

TEST(ParserTest, TrailingSemicolonsAccepted) {
  EXPECT_NE(MustParse("SELECT 1;"), nullptr);
  EXPECT_NE(MustParse("SELECT 1;;"), nullptr);
}

TEST(ParserTest, VariablesInPredicates) {
  auto stmt = MustParse("SELECT a FROM t WHERE htmid >= @htm1 and htmid <= @htm2");
  ASSERT_NE(stmt, nullptr);
  ASSERT_NE(stmt->where, nullptr);
}

struct ErrorCase {
  const char* sql;
};

class ParserErrorTest : public ::testing::TestWithParam<ErrorCase> {};

TEST_P(ParserErrorTest, Rejects) {
  auto parsed = ParseSelect(GetParam().sql);
  EXPECT_FALSE(parsed.ok()) << GetParam().sql;
  EXPECT_EQ(parsed.status().code(), sqlog::StatusCode::kParseError);
}

INSTANTIATE_TEST_SUITE_P(
    Errors, ParserErrorTest,
    ::testing::Values(ErrorCase{""}, ErrorCase{"UPDATE t SET x = 1"},
                      ErrorCase{"SELECT FROM t"}, ErrorCase{"SELECT a, FROM t"},
                      ErrorCase{"SELECT a FROM"}, ErrorCase{"SELECT a FROM t WHERE"},
                      ErrorCase{"SELECT a FROM t WHERE x ="},
                      ErrorCase{"SELECT a FROM t WHERE x IN"},
                      ErrorCase{"SELECT a FROM t WHERE x BETWEEN 1"},
                      ErrorCase{"SELECT count( FROM t"},
                      ErrorCase{"SELECT a FROM t trailing garbage ("},
                      ErrorCase{"SELECT a FROM t GROUP type"},
                      ErrorCase{"SELECT a FROM t ORDER type"},
                      ErrorCase{"SELECT CASE END FROM t"}));

TEST(ParserTest, RoundTripThroughPrinter) {
  // print(parse(x)) must re-parse to the same canonical text.
  const char* statements[] = {
      "SELECT a, b FROM t WHERE a = 0 AND b >= 3",
      "SELECT p.objID FROM fGetObjFromRect(1.0, 2.0, 3.0, 4.0) n, photoPrimary p "
      "WHERE n.objID = p.objID and r between 14 and 17",
      "SELECT count(*) FROM photoPrimary WHERE htmid >= 1 and htmid <= 2",
      "SELECT top 10 * FROM g JOIN s ON g.id = s.id ORDER BY g.r DESC",
      "SELECT x FROM t WHERE a = 1 OR (b = 2 AND c = 3)",
  };
  PrintOptions opts;
  for (const char* sql : statements) {
    auto first = ParseSelect(sql);
    ASSERT_TRUE(first.ok()) << sql;
    std::string printed = Print(*first.value(), opts);
    auto second = ParseSelect(printed);
    ASSERT_TRUE(second.ok()) << printed;
    EXPECT_EQ(Print(*second.value(), opts), printed) << sql;
  }
}

std::string NestedParens(int depth) {
  std::string sql = "SELECT ";
  sql.append(depth, '(');
  sql += "1";
  sql.append(depth, ')');
  return sql;
}

TEST(ParserTest, NestingUpToTheDepthLimitParses) {
  // The SELECT core occupies one level, so kMaxParseDepth - 1 paren
  // levels sit exactly at the limit.
  EXPECT_TRUE(ParseSelect(NestedParens(kMaxParseDepth - 1)).ok());
}

TEST(ParserTest, NestingBeyondTheDepthLimitIsADiagnosticNotACrash) {
  auto at_limit = ParseSelect(NestedParens(kMaxParseDepth));
  ASSERT_FALSE(at_limit.ok());
  EXPECT_NE(at_limit.status().ToString().find("nesting"), std::string::npos);

  // Far past the limit — the fuzzer's original finding was a stack
  // overflow on multi-kilobyte paren runs.
  EXPECT_FALSE(ParseSelect(NestedParens(100000)).ok());
}

TEST(ParserTest, StarIsRejectedInExpressionPositions) {
  // Fuzz-found: `(*)` used to parse into an AST whose canonical print
  // (`* as alias`) could not reparse. Star is select-list / count(*)
  // syntax only.
  EXPECT_FALSE(ParseSelect("SELECT (*) FROM t").ok());
  EXPECT_FALSE(ParseSelect("SELECT 1 + * FROM t").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t WHERE x = *").ok());
  // The legitimate star positions still work.
  EXPECT_TRUE(ParseSelect("SELECT * FROM t").ok());
  EXPECT_TRUE(ParseSelect("SELECT t.* FROM t").ok());
  EXPECT_TRUE(ParseSelect("SELECT count(*) FROM t").ok());
}

TEST(ParserTest, DepthLimitCoversEveryRecursionShape) {
  auto nested = [](const char* head, const char* open, const char* body,
                   const char* close, int depth) {
    std::string sql = head;
    for (int i = 0; i < depth; ++i) sql += open;
    sql += body;
    for (int i = 0; i < depth; ++i) sql += close;
    return sql;
  };
  // NOT chains, unary-sign chains, FROM paren trees, nested subqueries,
  // and CASE nesting must all hit the diagnostic, never the stack limit.
  EXPECT_FALSE(ParseSelect(nested("SELECT 1 WHERE ", "NOT ", "a = 1", "", 100000)).ok());
  EXPECT_FALSE(ParseSelect(nested("SELECT ", "- ", "x", "", 100000)).ok());
  EXPECT_FALSE(ParseSelect(nested("SELECT ", "+ ", "x", "", 100000)).ok());
  EXPECT_FALSE(ParseSelect(nested("SELECT * FROM ", "(", "t", ")", 100000)).ok());
  EXPECT_FALSE(
      ParseSelect(nested("", "SELECT * FROM (", "t", ")", 100000)).ok());
  EXPECT_FALSE(ParseSelect(nested("SELECT ", "CASE WHEN 1 = 1 THEN ", "0",
                                  " ELSE 0 END", 100000)).ok());
  // Deep but legal nesting of each shape still parses.
  EXPECT_TRUE(ParseSelect(nested("SELECT 1 WHERE ", "NOT ", "a = 1", "", 40)).ok());
  EXPECT_TRUE(ParseSelect(nested("SELECT * FROM ", "(", "t", ")", 40)).ok());
}

}  // namespace
}  // namespace sqlog::sql
