#include "log/record.h"

#include <gtest/gtest.h>

namespace sqlog::log {
namespace {

LogRecord Make(uint64_t seq, int64_t t, const char* user) {
  LogRecord record;
  record.seq = seq;
  record.timestamp_ms = t;
  record.user = user;
  record.statement = "SELECT 1";
  return record;
}

TEST(RecordTest, TruthLabelNamesRoundTrip) {
  for (TruthLabel label :
       {TruthLabel::kUnlabeled, TruthLabel::kOrganic, TruthLabel::kDwStifle,
        TruthLabel::kDsStifle, TruthLabel::kDfStifle, TruthLabel::kCthReal,
        TruthLabel::kCthFalse, TruthLabel::kSws, TruthLabel::kSnc, TruthLabel::kDuplicate,
        TruthLabel::kNoise}) {
    EXPECT_EQ(ParseTruthLabel(TruthLabelName(label)), label);
  }
}

TEST(RecordTest, UnknownTruthLabelMapsToUnlabeled) {
  EXPECT_EQ(ParseTruthLabel("nonsense"), TruthLabel::kUnlabeled);
  EXPECT_EQ(ParseTruthLabel(""), TruthLabel::kUnlabeled);
}

TEST(RecordTest, SortByTimeOrdersByTimestampThenSeq) {
  QueryLog log;
  log.Append(Make(2, 100, "a"));
  log.Append(Make(1, 50, "b"));
  log.Append(Make(0, 100, "c"));
  log.SortByTime();
  EXPECT_EQ(log.records()[0].user, "b");
  EXPECT_EQ(log.records()[1].user, "c");  // same time, lower seq first
  EXPECT_EQ(log.records()[2].user, "a");
}

TEST(RecordTest, RenumberAssignsPositions) {
  QueryLog log;
  log.Append(Make(7, 1, "a"));
  log.Append(Make(3, 2, "b"));
  log.Renumber();
  EXPECT_EQ(log.records()[0].seq, 0u);
  EXPECT_EQ(log.records()[1].seq, 1u);
}

TEST(RecordTest, DistinctUserCountIgnoresEmpty) {
  QueryLog log;
  log.Append(Make(0, 1, "a"));
  log.Append(Make(1, 2, "a"));
  log.Append(Make(2, 3, "b"));
  log.Append(Make(3, 4, ""));
  EXPECT_EQ(log.DistinctUserCount(), 2u);
}

TEST(RecordTest, EmptyLogBasics) {
  QueryLog log;
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.DistinctUserCount(), 0u);
  log.SortByTime();   // no-op, must not crash
  log.Renumber();
}

}  // namespace
}  // namespace sqlog::log
