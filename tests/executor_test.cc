#include "engine/executor.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace sqlog::engine {
namespace {

/// Small hand-built database: predictable values for exact assertions.
class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto people = db_.CreateTable("people", {{"id", Value::Kind::kInt64},
                                             {"name", Value::Kind::kString},
                                             {"age", Value::Kind::kInt64},
                                             {"city", Value::Kind::kString}});
    ASSERT_TRUE(people.ok());
    ASSERT_TRUE(people.value()->AppendRow({Value::Int(1), Value::Str("Ann"),
                                           Value::Int(30), Value::Str("Berlin")}).ok());
    ASSERT_TRUE(people.value()->AppendRow({Value::Int(2), Value::Str("Bob"),
                                           Value::Int(25), Value::Str("Paris")}).ok());
    ASSERT_TRUE(people.value()->AppendRow({Value::Int(3), Value::Str("Cid"),
                                           Value::Int(35), Value::Str("Berlin")}).ok());
    ASSERT_TRUE(people.value()->AppendRow({Value::Int(4), Value::Str("Dee"),
                                           Value::Null(), Value::Str("Rome")}).ok());

    auto orders = db_.CreateTable("orders", {{"oid", Value::Kind::kInt64},
                                             {"person_id", Value::Kind::kInt64},
                                             {"total", Value::Kind::kDouble}});
    ASSERT_TRUE(orders.ok());
    ASSERT_TRUE(orders.value()->AppendRow({Value::Int(10), Value::Int(1),
                                           Value::Real(9.5)}).ok());
    ASSERT_TRUE(orders.value()->AppendRow({Value::Int(11), Value::Int(1),
                                           Value::Real(20.0)}).ok());
    ASSERT_TRUE(orders.value()->AppendRow({Value::Int(12), Value::Int(3),
                                           Value::Real(5.0)}).ok());
  }

  ResultSet MustRun(const std::string& sql) {
    Executor executor(&db_);
    auto result = executor.ExecuteSql(sql);
    EXPECT_TRUE(result.ok()) << sql << " → " << result.status().ToString();
    return result.ok() ? std::move(result.value()) : ResultSet{};
  }

  Database db_;
};

TEST_F(ExecutorTest, FullScanProjection) {
  ResultSet r = MustRun("SELECT name FROM people");
  ASSERT_EQ(r.row_count(), 4u);
  EXPECT_EQ(r.column_names, (std::vector<std::string>{"name"}));
  EXPECT_EQ(r.rows[0][0].AsString(), "Ann");
}

TEST_F(ExecutorTest, SelectStarExpandsAllColumns) {
  ResultSet r = MustRun("SELECT * FROM people");
  EXPECT_EQ(r.column_names.size(), 4u);
  EXPECT_EQ(r.row_count(), 4u);
}

TEST_F(ExecutorTest, WhereEquality) {
  ResultSet r = MustRun("SELECT name FROM people WHERE id = 2");
  ASSERT_EQ(r.row_count(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "Bob");
}

TEST_F(ExecutorTest, WhereStringEqualityIsCaseInsensitive) {
  ResultSet r = MustRun("SELECT name FROM people WHERE city = 'berlin'");
  EXPECT_EQ(r.row_count(), 2u);
}

TEST_F(ExecutorTest, WhereRangeAndConjunction) {
  ResultSet r = MustRun("SELECT name FROM people WHERE age >= 30 AND city = 'Berlin'");
  ASSERT_EQ(r.row_count(), 2u);
}

TEST_F(ExecutorTest, WhereDisjunction) {
  ResultSet r = MustRun("SELECT name FROM people WHERE id = 1 OR id = 3");
  EXPECT_EQ(r.row_count(), 2u);
}

TEST_F(ExecutorTest, InList) {
  ResultSet r = MustRun("SELECT name FROM people WHERE id IN (1, 3, 99)");
  EXPECT_EQ(r.row_count(), 2u);
}

TEST_F(ExecutorTest, NotInList) {
  ResultSet r = MustRun("SELECT name FROM people WHERE id NOT IN (1, 3)");
  EXPECT_EQ(r.row_count(), 2u);
}

TEST_F(ExecutorTest, Between) {
  ResultSet r = MustRun("SELECT name FROM people WHERE age BETWEEN 25 AND 30");
  EXPECT_EQ(r.row_count(), 2u);
}

TEST_F(ExecutorTest, Like) {
  EXPECT_EQ(MustRun("SELECT name FROM people WHERE name LIKE 'A%'").row_count(), 1u);
  EXPECT_EQ(MustRun("SELECT name FROM people WHERE name LIKE '%e%'").row_count(), 1u);
  EXPECT_EQ(MustRun("SELECT name FROM people WHERE name LIKE '_ob'").row_count(), 1u);
  EXPECT_EQ(MustRun("SELECT name FROM people WHERE city NOT LIKE 'B%'").row_count(), 2u);
}

TEST_F(ExecutorTest, NullComparisonNeverMatches) {
  // Dee's age is NULL: `= NULL` and `<> NULL` both miss every row — the
  // precise bug SNC rewrites fix.
  EXPECT_EQ(MustRun("SELECT name FROM people WHERE age = NULL").row_count(), 0u);
  EXPECT_EQ(MustRun("SELECT name FROM people WHERE age <> NULL").row_count(), 0u);
}

TEST_F(ExecutorTest, IsNullMatches) {
  EXPECT_EQ(MustRun("SELECT name FROM people WHERE age IS NULL").row_count(), 1u);
  EXPECT_EQ(MustRun("SELECT name FROM people WHERE age IS NOT NULL").row_count(), 3u);
}

TEST_F(ExecutorTest, ArithmeticInProjectionAndFilter) {
  ResultSet r = MustRun("SELECT age + 1 AS next FROM people WHERE age * 2 = 50");
  ASSERT_EQ(r.row_count(), 1u);
  EXPECT_EQ(r.column_names[0], "next");
  EXPECT_EQ(r.rows[0][0].AsInt(), 26);
}

TEST_F(ExecutorTest, OrderByDescending) {
  ResultSet r = MustRun("SELECT name FROM people WHERE age IS NOT NULL ORDER BY age DESC");
  ASSERT_EQ(r.row_count(), 3u);
  EXPECT_EQ(r.rows[0][0].AsString(), "Cid");
  EXPECT_EQ(r.rows[2][0].AsString(), "Bob");
}

TEST_F(ExecutorTest, TopLimitsRows) {
  ResultSet r = MustRun("SELECT TOP 2 name FROM people ORDER BY id");
  EXPECT_EQ(r.row_count(), 2u);
}

TEST_F(ExecutorTest, Distinct) {
  ResultSet r = MustRun("SELECT DISTINCT city FROM people");
  EXPECT_EQ(r.row_count(), 3u);
}

TEST_F(ExecutorTest, CountStar) {
  ResultSet r = MustRun("SELECT count(*) FROM people");
  ASSERT_EQ(r.row_count(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 4);
}

TEST_F(ExecutorTest, CountColumnSkipsNulls) {
  ResultSet r = MustRun("SELECT count(age) FROM people");
  EXPECT_EQ(r.rows[0][0].AsInt(), 3);
}

TEST_F(ExecutorTest, AggregatesMinMaxSumAvg) {
  ResultSet r = MustRun("SELECT min(age), max(age), sum(age), avg(age) FROM people");
  ASSERT_EQ(r.row_count(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 25);
  EXPECT_EQ(r.rows[0][1].AsInt(), 35);
  EXPECT_DOUBLE_EQ(r.rows[0][2].AsDouble(), 90.0);
  EXPECT_DOUBLE_EQ(r.rows[0][3].AsDouble(), 30.0);
}

TEST_F(ExecutorTest, GroupByWithHaving) {
  ResultSet r = MustRun(
      "SELECT city, count(*) AS n FROM people GROUP BY city HAVING count(*) > 1");
  ASSERT_EQ(r.row_count(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "Berlin");
  EXPECT_EQ(r.rows[0][1].AsInt(), 2);
}

TEST_F(ExecutorTest, GlobalAggregateOverEmptyFilterYieldsOneRow) {
  ResultSet r = MustRun("SELECT count(*) FROM people WHERE id = 99");
  ASSERT_EQ(r.row_count(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 0);
}

TEST_F(ExecutorTest, InnerJoinOnEquality) {
  ResultSet r = MustRun(
      "SELECT p.name, o.total FROM people p INNER JOIN orders o ON p.id = o.person_id");
  EXPECT_EQ(r.row_count(), 3u);
}

TEST_F(ExecutorTest, LeftOuterJoinKeepsUnmatched) {
  ResultSet r = MustRun(
      "SELECT p.name, o.oid FROM people p LEFT OUTER JOIN orders o ON p.id = o.person_id");
  // Ann×2, Cid×1, Bob+NULL, Dee+NULL.
  ASSERT_EQ(r.row_count(), 5u);
  size_t nulls = 0;
  for (const auto& row : r.rows) {
    if (row[1].is_null()) ++nulls;
  }
  EXPECT_EQ(nulls, 2u);
}

TEST_F(ExecutorTest, CommaJoinWithWhereEquality) {
  ResultSet r = MustRun(
      "SELECT p.name FROM people p, orders o WHERE p.id = o.person_id AND o.total > 10");
  ASSERT_EQ(r.row_count(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "Ann");
}

TEST_F(ExecutorTest, JoinAggregation) {
  ResultSet r = MustRun(
      "SELECT p.name, sum(o.total) AS spent FROM people p JOIN orders o "
      "ON p.id = o.person_id GROUP BY p.name ORDER BY p.name");
  ASSERT_EQ(r.row_count(), 2u);
}

TEST_F(ExecutorTest, GroupByWithOrderByAggregate) {
  ResultSet r = MustRun(
      "SELECT city, count(*) AS n FROM people GROUP BY city ORDER BY count(*) DESC, city");
  ASSERT_EQ(r.row_count(), 3u);
  EXPECT_EQ(r.rows[0][0].AsString(), "Berlin");
  EXPECT_EQ(r.rows[0][1].AsInt(), 2);
  EXPECT_EQ(r.rows[1][0].AsString(), "Paris");  // tie broken by city name
  EXPECT_EQ(r.rows[2][0].AsString(), "Rome");
}

TEST_F(ExecutorTest, TopWithAggregateOrderBy) {
  ResultSet r = MustRun(
      "SELECT TOP 1 city, count(*) FROM people GROUP BY city ORDER BY count(*) DESC");
  ASSERT_EQ(r.row_count(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "Berlin");
}

TEST_F(ExecutorTest, DerivedTable) {
  ResultSet r = MustRun(
      "SELECT x.n FROM (SELECT count(*) AS n FROM people) x");
  ASSERT_EQ(r.row_count(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 4);
}

TEST_F(ExecutorTest, InSubquery) {
  ResultSet r = MustRun(
      "SELECT name FROM people WHERE id IN (SELECT person_id FROM orders)");
  EXPECT_EQ(r.row_count(), 2u);
}

TEST_F(ExecutorTest, ExistsSubquery) {
  ResultSet r = MustRun("SELECT name FROM people WHERE EXISTS (SELECT 1 FROM orders)");
  EXPECT_EQ(r.row_count(), 4u);
}

TEST_F(ExecutorTest, ScalarSubquery) {
  ResultSet r = MustRun("SELECT name FROM people WHERE age > (SELECT min(age) FROM people)");
  EXPECT_EQ(r.row_count(), 2u);
}

TEST_F(ExecutorTest, CaseExpression) {
  ResultSet r = MustRun(
      "SELECT name, CASE WHEN age >= 30 THEN 'senior' ELSE 'junior' END AS band "
      "FROM people WHERE age IS NOT NULL ORDER BY id");
  ASSERT_EQ(r.row_count(), 3u);
  EXPECT_EQ(r.rows[0][1].AsString(), "senior");
  EXPECT_EQ(r.rows[1][1].AsString(), "junior");
}

TEST_F(ExecutorTest, ThreeTableJoin) {
  // people ⋈ orders ⋈ people (self via derived table) exercises the
  // left-deep fold with two hash joins.
  ResultSet r = MustRun(
      "SELECT p.name, o.total, x.cnt FROM people p "
      "JOIN orders o ON p.id = o.person_id "
      "JOIN (SELECT person_id, count(*) AS cnt FROM orders GROUP BY person_id) x "
      "ON x.person_id = p.id");
  EXPECT_EQ(r.row_count(), 3u);
}

TEST_F(ExecutorTest, NotInSubquery) {
  ResultSet r = MustRun(
      "SELECT name FROM people WHERE id NOT IN (SELECT person_id FROM orders)");
  EXPECT_EQ(r.row_count(), 2u);  // Bob and Dee
}

TEST_F(ExecutorTest, DivisionByZeroYieldsNull) {
  ResultSet r = MustRun("SELECT age / 0 FROM people WHERE id = 1");
  ASSERT_EQ(r.row_count(), 1u);
  EXPECT_TRUE(r.rows[0][0].is_null());
}

TEST_F(ExecutorTest, ModuloArithmetic) {
  ResultSet r = MustRun("SELECT age % 7 FROM people WHERE id = 1");
  ASSERT_EQ(r.row_count(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 2);
}

TEST_F(ExecutorTest, HexLiteralComparison) {
  ResultSet r = MustRun("SELECT name FROM people WHERE id = 0x2");
  ASSERT_EQ(r.row_count(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "Bob");
}

TEST_F(ExecutorTest, ScalarFunctions) {
  ResultSet r = MustRun("SELECT abs(-5), sqrt(16.0) FROM people WHERE id = 1");
  ASSERT_EQ(r.row_count(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 5);
  EXPECT_DOUBLE_EQ(r.rows[0][1].AsDouble(), 4.0);
}

TEST_F(ExecutorTest, CountDistinct) {
  ResultSet r = MustRun("SELECT count(DISTINCT city) FROM people");
  ASSERT_EQ(r.row_count(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 3);
}

TEST_F(ExecutorTest, SelectWithoutFrom) {
  ResultSet r = MustRun("SELECT 1 + 2");
  ASSERT_EQ(r.row_count(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 3);
}

TEST_F(ExecutorTest, InListSetFastPathMatchesLinearSemantics) {
  // Large literal IN-list (hash-set fast path) must agree with a chain
  // of OR equalities (generic path).
  std::string in_list = "SELECT name FROM people WHERE id IN (";
  std::string ors = "SELECT name FROM people WHERE ";
  for (int i = 1; i <= 40; i += 2) {
    if (i > 1) {
      in_list += ", ";
      ors += " OR ";
    }
    in_list += std::to_string(i);
    ors += "id = " + std::to_string(i);
  }
  in_list += ")";
  EXPECT_EQ(MustRun(in_list).row_count(), MustRun(ors).row_count());
}

TEST_F(ExecutorTest, UnknownTableIsNotFound) {
  Executor executor(&db_);
  auto result = executor.ExecuteSql("SELECT * FROM missing");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(ExecutorTest, UnknownColumnIsNotFound) {
  Executor executor(&db_);
  auto result = executor.ExecuteSql("SELECT nope FROM people");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(ExecutorTest, ParseErrorPropagates) {
  Executor executor(&db_);
  EXPECT_EQ(executor.ExecuteSql("SELECT FROM").status().code(), StatusCode::kParseError);
}

TEST(ExecutorSkyServerTest, TableFunctionsWorkOverPhotoPrimary) {
  Database db;
  ASSERT_TRUE(PopulateSkyServerSample(db, 300).ok());
  Executor executor(&db);

  // Nearest object: exactly one row.
  auto nearest = executor.ExecuteSql("SELECT * FROM fGetNearestObjEq(180.0, 0.0, 0.1)");
  ASSERT_TRUE(nearest.ok()) << nearest.status().ToString();
  EXPECT_EQ(nearest->row_count(), 1u);

  // Rect: every returned (ra, dec) is inside the rectangle.
  auto rect = executor.ExecuteSql(
      "SELECT ra, dec FROM fGetObjFromRect(0.0, -90.0, 180.0, 0.0) n");
  ASSERT_TRUE(rect.ok());
  for (const auto& row : rect->rows) {
    EXPECT_GE(row[0].AsDouble(), 0.0);
    EXPECT_LE(row[0].AsDouble(), 180.0);
    EXPECT_LE(row[1].AsDouble(), 0.0);
  }

  // Nearby join against the base table (the paper's top pattern shape).
  auto nearby = executor.ExecuteSql(
      "SELECT p.objID, p.ra, p.dec FROM fGetNearbyObjEq(180.0, 0.0, 3000.0) n, "
      "photoPrimary p WHERE n.objID = p.objID");
  ASSERT_TRUE(nearby.ok()) << nearby.status().ToString();
  EXPECT_GT(nearby->row_count(), 0u);
}

}  // namespace
}  // namespace sqlog::engine
