// R6 negative fixture: a core::Detector subclass outside the built-in
// registration unit (assumed path src/core/rogue_detector.cc). Its
// matches would never surface in DetectorRegistry::Global().Ids(), the
// `sqlog report` catalog, or the statistics rows.

#include "core/detector.h"

namespace sqlog::core {

class RogueDetector final : public Detector {
 public:
  const DetectorInfo& info() const override {
    static const DetectorInfo kInfo{.id = "rogue", .display_name = "Rogue"};
    return kInfo;
  }
};

}  // namespace sqlog::core
