// Golden fixture for the phase-1 fact extractor: one of everything the
// fact table records. The expected dump lives next to it in
// sample.facts.golden; lint_facts_test pins DumpFacts output against it
// and round-trips the facts through the on-disk cache format. Never
// compiled.
#include <vector>

#include "util/hash.h"
#include "util/thread_annotations.h"

namespace sqlog::demo {

class Counter {
 public:
  void Add(int delta) {
    MutexLock lock(mu_);
    total_ += delta;
    Log(delta);
  }

 private:
  void Log(int delta);

  Mutex mu_;
  long total_ SQLOG_GUARDED_BY(mu_) = 0;
  std::vector<int> history_;
};

// sqlog-hot
void Drain(std::vector<int>* out) {
  // sqlog-lint: allow(R10 drains into the caller's reused buffer)
  out->push_back(1);
  int x = rand();
  (void)x;
}

}  // namespace sqlog::demo
