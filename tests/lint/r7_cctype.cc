// Negative fixture for rule R7: locale-dependent <cctype>
// classification in src/. Linted with --assume-path=src/sql/scan.cc;
// never compiled. Each marked line must produce one R7 finding.
#include <cctype>

namespace sqlog::sql {

bool StartsIdentifier(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0;  // R7: isalpha
}

bool ContinuesIdentifier(char c) {
  return isalnum(static_cast<unsigned char>(c)) != 0;  // R7: isalnum
}

bool IsHexByte(char c) {
  return std::isxdigit(static_cast<unsigned char>(c)) != 0;  // R7: isxdigit
}

char FoldCase(char c) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));  // R7: tolower
}

}  // namespace sqlog::sql
