// Negative fixture for rule R9: two functions acquire the same pair of
// locks in opposite orders, so the static lock graph has an a_ <-> b_
// cycle — a potential deadlock. Linted with
// --assume-path=src/util/lock_cycle.cc; never compiled.
#include "util/thread_annotations.h"

namespace sqlog::util {

class Pair {
 public:
  void First() {
    MutexLock a(a_);
    MutexLock b(b_);  // R9: acquires b_ while a_ is held
  }

  void Second() {
    MutexLock b(b_);
    MutexLock a(a_);  // R9: acquires a_ while b_ is held — opposite order
  }

 private:
  Mutex a_;
  Mutex b_;
};

}  // namespace sqlog::util
