// Negative fixture for rule R8: a file in the util layer (the bottom of
// the DAG) including a core-layer header is a layering back-edge.
// Linted with --assume-path=src/util/backedge.cc; never compiled.
#include "core/template_store.h"  // R8: util may not depend on core

namespace sqlog::util {

inline int UseUpperLayer() { return 0; }

}  // namespace sqlog::util
