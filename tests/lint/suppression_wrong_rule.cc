// Negative fixture: a suppression names a different rule than the one
// that fires, so it must NOT silence the finding. The allow(R2) below
// is well-formed but the violation is R4. Linted with
// --assume-path=src/util/wrong_rule.cc; never compiled.
#include <mutex>

namespace sqlog::util {

class WrongRule {
 private:
  // sqlog-lint: allow(R2 this suppression targets the wrong rule on purpose)
  std::mutex mu_;  // R4 still fires
};

}  // namespace sqlog::util
