// Positive fixture: every violation below carries a well-formed
// suppression, so sqlog-lint must exit 0 on this file. Linted with
// --assume-path=src/core/suppressed.cc; never compiled.
#include <mutex>
#include <unordered_map>
#include <vector>

#include "sql/parser.h"

namespace sqlog::core {

int ParseOnceForADiagnostic(const std::string& statement) {
  // sqlog-lint: allow(R1 fixture demonstrating a justified one-off parse)
  auto parsed = sql::ParseSelect(statement);
  return parsed.ok() ? 1 : 0;
}

std::vector<int> DrainCounts(const std::unordered_map<int, int>& counts) {
  std::vector<int> out;
  // sqlog-lint: deterministic-merge(caller sorts `out` before any output)
  for (const auto& entry : counts) {
    out.push_back(entry.second);
  }
  return out;
}

class LegacyGuard {
 private:
  // sqlog-lint: allow(R4 fixture keeps a raw mutex to prove suppression works)
  std::mutex mu_;
};

}  // namespace sqlog::core
