// Negative fixture for rule R10: a function marked // sqlog-hot may not
// allocate without a written justification. Linted with
// --assume-path=src/util/hot_alloc.cc (not a configured hot file — the
// marker alone makes the function hot); never compiled.
#include <string>
#include <vector>

namespace sqlog::util {

// sqlog-hot
inline void AccumulateLengths(const std::vector<std::string>& names,
                              std::vector<size_t>* out) {
  for (const auto& name : names) {
    out->push_back(name.size());  // R10: unjustified allocation on a hot path
  }
}

}  // namespace sqlog::util
