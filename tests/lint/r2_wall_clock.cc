// Negative fixture for rule R2: nondeterminism sources in deterministic
// core code. Linted with --assume-path=src/core/sampler.cc; never
// compiled. Each marked line must produce one R2 finding.
#include <cstdlib>
#include <ctime>
#include <random>

namespace sqlog::core {

unsigned SeedFromWallClock() {
  return static_cast<unsigned>(std::time(nullptr));  // R2: std::time
}

int SampleWithoutASeed() {
  std::random_device rd;     // R2: random_device
  std::mt19937 gen;          // R2: default-seeded engine
  (void)rd;
  (void)gen;
  return rand() % 100;       // R2: rand
}

}  // namespace sqlog::core
