// Negative fixture for rule R3: iterating an unordered container in
// core code without the deterministic-merge tag. Linted with
// --assume-path=src/core/tally.cc; never compiled.
#include <string>
#include <unordered_map>
#include <vector>

namespace sqlog::core {

std::vector<std::string> TemplatesInHashOrder(
    const std::unordered_map<std::string, int>& counts) {
  std::vector<std::string> out;
  for (const auto& entry : counts) {  // R3 fires here
    out.push_back(entry.first);
  }
  return out;
}

}  // namespace sqlog::core
