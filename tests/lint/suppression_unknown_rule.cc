// Negative fixture: a suppression naming a rule id that does not exist
// is itself a lint error ("config" finding, unsuppressible). Linted
// with --assume-path=src/util/unknown_rule.cc; never compiled.

namespace sqlog::util {

// sqlog-lint: allow(R42 there is no rule forty-two)
inline int Nothing() { return 0; }

}  // namespace sqlog::util
