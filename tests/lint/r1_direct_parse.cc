// Negative fixture for rule R1: a direct parser call in a file that is
// not on the parse-avoidance allowlist. Linted with
// --assume-path=src/core/report.cc; never compiled.
#include "sql/parser.h"

namespace sqlog::core {

int CountJoinsTheWrongWay(const std::string& statement) {
  auto parsed = sql::ParseSelect(statement);  // R1 fires here
  if (!parsed.ok()) return 0;
  return static_cast<int>(parsed->from.size());
}

}  // namespace sqlog::core
