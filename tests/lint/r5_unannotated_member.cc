// Negative fixture for rule R5: a concurrency-manifest type with a
// mutable member that carries no thread_annotations.h marker. Linted
// with --assume-path=src/util/thread_pool.h, which the checked-in
// manifest maps to type ThreadPool; never compiled.

namespace sqlog::util {

class ThreadPool {
 public:
  explicit ThreadPool(unsigned threads);

 private:
  unsigned thread_count_ = 0;  // R5: no SQLOG_* marker on a mutable member
};

}  // namespace sqlog::util
