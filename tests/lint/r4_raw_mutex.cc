// Negative fixture for rule R4: raw std::mutex / std::lock_guard use
// instead of the annotated wrappers from util/thread_annotations.h.
// Linted with --assume-path=src/util/counter.cc; never compiled.
#include <mutex>

namespace sqlog::util {

class Counter {
 public:
  void Increment() {
    std::lock_guard<std::mutex> lock(mu_);  // R4: lock_guard (and mutex in the type)
    ++value_;
  }

 private:
  std::mutex mu_;  // R4: raw mutex member
  long value_ = 0;
};

}  // namespace sqlog::util
