// Tests for the annotated Mutex / MutexLock / CondVarLock wrappers in
// util/thread_annotations.h. These carry the clang thread-safety
// attributes; under GCC they must still behave exactly like the
// std::mutex primitives they wrap — which is what these tests pin down.

#include "util/thread_annotations.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <thread>
#include <vector>

namespace sqlog::util {
namespace {

TEST(MutexTest, LockUnlockRoundTrip) {
  Mutex mu;
  mu.Lock();
  mu.Unlock();
  mu.Lock();
  mu.Unlock();
}

TEST(MutexTest, TryLockFailsWhileHeldAndSucceedsAfterRelease) {
  Mutex mu;
  mu.Lock();
  // try_lock on the owning thread is UB for std::mutex, so probe from
  // another thread.
  bool acquired_while_held = true;
  std::thread probe([&] { acquired_while_held = mu.TryLock(); });
  probe.join();
  EXPECT_FALSE(acquired_while_held);
  mu.Unlock();
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexLockTest, ProvidesMutualExclusion) {
  Mutex mu;
  long counter = 0;  // deliberately non-atomic: the lock is the guard
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIncrements);
}

TEST(MutexLockTest, ReleasesOnScopeExitIncludingException) {
  Mutex mu;
  try {
    MutexLock lock(mu);
    throw std::runtime_error("escape");
  } catch (const std::runtime_error&) {
  }
  // If the destructor had not released, this would deadlock.
  MutexLock reacquire(mu);
}

TEST(CondVarLockTest, WaitAndNotifyAcrossThreads) {
  Mutex mu;
  std::condition_variable cv;
  bool ready = false;
  int observed = 0;

  std::thread waiter([&] {
    CondVarLock lock(mu);
    cv.wait(lock.native(), [&] { return ready; });
    observed = 42;
  });

  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.notify_one();
  waiter.join();
  EXPECT_EQ(observed, 42);
}

TEST(CondVarLockTest, HoldsTheMutexWhileInScope) {
  Mutex mu;
  bool acquired_while_held = true;
  {
    CondVarLock lock(mu);
    std::thread probe([&] { acquired_while_held = mu.TryLock(); });
    probe.join();
  }
  EXPECT_FALSE(acquired_while_held);
  // Released after scope exit.
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

}  // namespace
}  // namespace sqlog::util
