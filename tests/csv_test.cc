#include "util/csv.h"

#include <gtest/gtest.h>

namespace sqlog {
namespace {

TEST(CsvTest, PlainFieldsNeedNoQuoting) {
  EXPECT_EQ(Csv::EscapeField("hello"), "hello");
  EXPECT_EQ(Csv::EscapeField(""), "");
}

TEST(CsvTest, FieldsWithSeparatorAreQuoted) {
  EXPECT_EQ(Csv::EscapeField("a,b"), "\"a,b\"");
}

TEST(CsvTest, EmbeddedQuotesAreDoubled) {
  EXPECT_EQ(Csv::EscapeField("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvTest, NewlinesForceQuoting) {
  EXPECT_EQ(Csv::EscapeField("a\nb"), "\"a\nb\"");
}

TEST(CsvTest, JoinLineEscapesEachField) {
  EXPECT_EQ(Csv::JoinLine({"a", "b,c", "d"}), "a,\"b,c\",d");
}

TEST(CsvTest, ParseSimpleLine) {
  auto fields = Csv::ParseLine("a,b,c");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(CsvTest, ParseQuotedFieldWithSeparator) {
  auto fields = Csv::ParseLine("a,\"b,c\",d");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields, (std::vector<std::string>{"a", "b,c", "d"}));
}

TEST(CsvTest, ParseDoubledQuote) {
  auto fields = Csv::ParseLine("\"say \"\"hi\"\"\"");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ((*fields)[0], "say \"hi\"");
}

TEST(CsvTest, ParseEmptyFields) {
  auto fields = Csv::ParseLine(",,");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields, (std::vector<std::string>{"", "", ""}));
}

TEST(CsvTest, UnterminatedQuoteIsError) {
  auto fields = Csv::ParseLine("\"oops");
  EXPECT_FALSE(fields.ok());
  EXPECT_EQ(fields.status().code(), StatusCode::kParseError);
}

TEST(CsvTest, RoundTripWithSqlStatement) {
  std::string sql = "SELECT a, b FROM t WHERE s = 'x,\"y\"'\nAND b > 1";
  std::string line = Csv::JoinLine({"1", sql, "end"});
  auto fields = Csv::ParseLine(line);
  ASSERT_TRUE(fields.ok());
  ASSERT_EQ(fields->size(), 3u);
  EXPECT_EQ((*fields)[1], sql);
}

TEST(CsvTest, SplitLogicalLinesRespectsQuotedNewlines) {
  std::string content = "a,\"line1\nline2\",c\nd,e,f\n";
  auto lines = Csv::SplitLogicalLines(content);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "a,\"line1\nline2\",c");
  EXPECT_EQ(lines[1], "d,e,f");
}

TEST(CsvTest, SplitLogicalLinesHandlesCrLf) {
  auto lines = Csv::SplitLogicalLines("a,b\r\nc,d\r\n");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "a,b");
  EXPECT_EQ(lines[1], "c,d");
}

TEST(CsvTest, SplitLogicalLinesWithoutTrailingNewline) {
  auto lines = Csv::SplitLogicalLines("a,b");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "a,b");
}

}  // namespace
}  // namespace sqlog
