#include "util/csv.h"

#include <gtest/gtest.h>

namespace sqlog {
namespace {

TEST(CsvTest, PlainFieldsNeedNoQuoting) {
  EXPECT_EQ(Csv::EscapeField("hello"), "hello");
  EXPECT_EQ(Csv::EscapeField(""), "");
}

TEST(CsvTest, FieldsWithSeparatorAreQuoted) {
  EXPECT_EQ(Csv::EscapeField("a,b"), "\"a,b\"");
}

TEST(CsvTest, EmbeddedQuotesAreDoubled) {
  EXPECT_EQ(Csv::EscapeField("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvTest, NewlinesForceQuoting) {
  EXPECT_EQ(Csv::EscapeField("a\nb"), "\"a\nb\"");
}

TEST(CsvTest, JoinLineEscapesEachField) {
  EXPECT_EQ(Csv::JoinLine({"a", "b,c", "d"}), "a,\"b,c\",d");
}

TEST(CsvTest, ParseSimpleLine) {
  auto fields = Csv::ParseLine("a,b,c");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(CsvTest, ParseQuotedFieldWithSeparator) {
  auto fields = Csv::ParseLine("a,\"b,c\",d");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields, (std::vector<std::string>{"a", "b,c", "d"}));
}

TEST(CsvTest, ParseDoubledQuote) {
  auto fields = Csv::ParseLine("\"say \"\"hi\"\"\"");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ((*fields)[0], "say \"hi\"");
}

TEST(CsvTest, ParseEmptyFields) {
  auto fields = Csv::ParseLine(",,");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields, (std::vector<std::string>{"", "", ""}));
}

TEST(CsvTest, UnterminatedQuoteIsError) {
  auto fields = Csv::ParseLine("\"oops");
  EXPECT_FALSE(fields.ok());
  EXPECT_EQ(fields.status().code(), StatusCode::kParseError);
}

TEST(CsvTest, RoundTripWithSqlStatement) {
  std::string sql = "SELECT a, b FROM t WHERE s = 'x,\"y\"'\nAND b > 1";
  std::string line = Csv::JoinLine({"1", sql, "end"});
  auto fields = Csv::ParseLine(line);
  ASSERT_TRUE(fields.ok());
  ASSERT_EQ(fields->size(), 3u);
  EXPECT_EQ((*fields)[1], sql);
}

TEST(CsvTest, SplitLogicalLinesRespectsQuotedNewlines) {
  std::string content = "a,\"line1\nline2\",c\nd,e,f\n";
  auto lines = Csv::SplitLogicalLines(content);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "a,\"line1\nline2\",c");
  EXPECT_EQ(lines[1], "d,e,f");
}

TEST(CsvTest, SplitLogicalLinesHandlesCrLf) {
  auto lines = Csv::SplitLogicalLines("a,b\r\nc,d\r\n");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "a,b");
  EXPECT_EQ(lines[1], "c,d");
}

TEST(CsvTest, SplitLogicalLinesWithoutTrailingNewline) {
  auto lines = Csv::SplitLogicalLines("a,b");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "a,b");
}

// Feeds `content` to a LineSplitter split at `cut`, draining after each
// Feed like a streaming reader would, then Finish() for the tail.
std::vector<std::string> SplitAtBoundary(std::string_view content, size_t cut) {
  Csv::LineSplitter splitter;
  std::vector<std::string> lines;
  std::string line;
  splitter.Feed(content.substr(0, cut));
  while (splitter.Next(&line)) lines.push_back(line);
  splitter.Feed(content.substr(cut));
  while (splitter.Next(&line)) lines.push_back(line);
  splitter.Finish();
  while (splitter.Next(&line)) lines.push_back(line);
  return lines;
}

std::vector<std::string> SplitByteByByte(std::string_view content) {
  Csv::LineSplitter splitter;
  std::vector<std::string> lines;
  std::string line;
  for (size_t i = 0; i < content.size(); ++i) {
    splitter.Feed(content.substr(i, 1));
    while (splitter.Next(&line)) lines.push_back(line);
  }
  splitter.Finish();
  while (splitter.Next(&line)) lines.push_back(line);
  return lines;
}

// A file exercising every stateful construct the splitter tracks:
// doubled quotes inside quoted fields, quoted separators and newlines,
// CRLF and lone-CR terminators, and an unterminated final line. Every
// split point must yield exactly the SplitLogicalLines result — the
// chunk boundary can land inside a `""` pair or between a CR and its
// LF, where a naive splitter would mis-toggle quote state or emit a
// phantom empty line.
constexpr std::string_view kBoundaryFile =
    "a,\"x\"\"y\",b\n"
    "\"line\nbreak\",2\r\n"
    "\"\"\"lead\",3\r"
    "plain,4\r\n"
    "\"trail\"\"\",5\n"
    "last,6";

TEST(CsvTest, LineSplitterMatchesSplitLogicalLinesAtEverySplitPoint) {
  const auto expected = Csv::SplitLogicalLines(kBoundaryFile);
  ASSERT_EQ(expected.size(), 6u);
  for (size_t cut = 0; cut <= kBoundaryFile.size(); ++cut) {
    EXPECT_EQ(expected, SplitAtBoundary(kBoundaryFile, cut)) << "split at " << cut;
  }
}

TEST(CsvTest, LineSplitterHandlesOneByteChunks) {
  EXPECT_EQ(Csv::SplitLogicalLines(kBoundaryFile), SplitByteByByte(kBoundaryFile));
}

TEST(CsvTest, LineSplitterDefersLoneCrAtChunkEnd) {
  // A chunk ending in an unquoted CR must not emit until the next chunk
  // reveals whether an LF follows (CRLF is one terminator, not two).
  Csv::LineSplitter splitter;
  std::string line;
  splitter.Feed("a\r");
  EXPECT_FALSE(splitter.Next(&line));
  splitter.Feed("\nb\n");
  ASSERT_TRUE(splitter.Next(&line));
  EXPECT_EQ(line, "a");
  ASSERT_TRUE(splitter.Next(&line));
  EXPECT_EQ(line, "b");
  EXPECT_FALSE(splitter.Next(&line));
}

TEST(CsvTest, LineSplitterLoneCrBeforeNonLfTerminatesLine) {
  Csv::LineSplitter splitter;
  std::string line;
  splitter.Feed("a\r");
  splitter.Feed("b\n");
  ASSERT_TRUE(splitter.Next(&line));
  EXPECT_EQ(line, "a");
  ASSERT_TRUE(splitter.Next(&line));
  EXPECT_EQ(line, "b");
}

TEST(CsvTest, LineSplitterTrailingCrAtFinishEmitsLine) {
  Csv::LineSplitter splitter;
  std::string line;
  splitter.Feed("a\r");
  splitter.Finish();
  ASSERT_TRUE(splitter.Next(&line));
  EXPECT_EQ(line, "a");
  EXPECT_FALSE(splitter.Next(&line));
  EXPECT_FALSE(splitter.truncated_in_quotes());
}

TEST(CsvTest, LineSplitterQuoteStateSurvivesSplitInsideDoubledQuotes) {
  // Boundary exactly between the two quotes of a `""` escape: the field
  // stays open, the line must not end at the quoted newline.
  Csv::LineSplitter splitter;
  std::string line;
  splitter.Feed("\"ab\"");
  EXPECT_FALSE(splitter.Next(&line));
  splitter.Feed("\"cd\nef\",x\n");
  ASSERT_TRUE(splitter.Next(&line));
  EXPECT_EQ(line, "\"ab\"\"cd\nef\",x");
  EXPECT_FALSE(splitter.Next(&line));
}

TEST(CsvTest, LineSplitterReportsTruncationInsideQuotes) {
  Csv::LineSplitter splitter;
  std::string line;
  splitter.Feed("\"open,field\n");
  EXPECT_FALSE(splitter.Next(&line));
  splitter.Finish();
  EXPECT_TRUE(splitter.truncated_in_quotes());
  ASSERT_TRUE(splitter.Next(&line));
  // The newline is quoted-field content, not a terminator, so the
  // truncated tail keeps it — same as SplitLogicalLines.
  EXPECT_EQ(line, "\"open,field\n");
}

}  // namespace
}  // namespace sqlog
