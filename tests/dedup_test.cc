#include "core/dedup.h"

#include <gtest/gtest.h>

namespace sqlog::core {
namespace {

log::LogRecord Make(int64_t t, const char* user, const char* sql) {
  log::LogRecord record;
  record.timestamp_ms = t;
  record.user = user;
  record.statement = sql;
  return record;
}

TEST(DedupTest, RemovesRepeatWithinThreshold) {
  log::QueryLog log;
  log.Append(Make(1000, "u", "SELECT 1"));
  log.Append(Make(1400, "u", "SELECT 1"));
  DedupStats stats;
  log::QueryLog out = RemoveDuplicates(log, DedupOptions{}, &stats);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(stats.removed_count, 1u);
  EXPECT_EQ(stats.input_count, 2u);
  EXPECT_EQ(stats.output_count, 1u);
}

TEST(DedupTest, KeepsRepeatBeyondThreshold) {
  log::QueryLog log;
  log.Append(Make(1000, "u", "SELECT 1"));
  log.Append(Make(3000, "u", "SELECT 1"));
  log::QueryLog out = RemoveDuplicates(log, DedupOptions{}, nullptr);
  EXPECT_EQ(out.size(), 2u);
}

TEST(DedupTest, DifferentUsersAreNotDuplicates) {
  log::QueryLog log;
  log.Append(Make(1000, "a", "SELECT 1"));
  log.Append(Make(1100, "b", "SELECT 1"));
  EXPECT_EQ(RemoveDuplicates(log, DedupOptions{}, nullptr).size(), 2u);
}

TEST(DedupTest, DifferentStatementsAreNotDuplicates) {
  log::QueryLog log;
  log.Append(Make(1000, "u", "SELECT 1"));
  log.Append(Make(1100, "u", "SELECT 2"));
  EXPECT_EQ(RemoveDuplicates(log, DedupOptions{}, nullptr).size(), 2u);
}

TEST(DedupTest, BurstCollapsesByChaining) {
  // 5 reloads 800ms apart: each is within the window of its predecessor,
  // so all but the first disappear even though the last is 3.2s after
  // the first.
  log::QueryLog log;
  for (int i = 0; i < 5; ++i) log.Append(Make(1000 + i * 800, "u", "SELECT 1"));
  log::QueryLog out = RemoveDuplicates(log, DedupOptions{}, nullptr);
  EXPECT_EQ(out.size(), 1u);
}

TEST(DedupTest, UnrestrictedRemovesAllRepeats) {
  log::QueryLog log;
  log.Append(Make(1000, "u", "SELECT 1"));
  log.Append(Make(9000000, "u", "SELECT 1"));
  DedupOptions options;
  options.unrestricted = true;
  EXPECT_EQ(RemoveDuplicates(log, options, nullptr).size(), 1u);
}

TEST(DedupTest, ThresholdSweepIsMonotone) {
  // Larger thresholds can only remove more (Table 4's shape).
  log::QueryLog log;
  const char* sqls[] = {"SELECT 1", "SELECT 2"};
  int64_t t = 0;
  for (int round = 0; round < 50; ++round) {
    for (const char* sql : sqls) {
      log.Append(Make(t, "u", sql));
      t += 700 * (1 + round % 7);
    }
  }
  size_t prev = log.size();
  size_t previous_out = prev + 1;
  for (int64_t threshold : {1000, 2000, 5000, 10000}) {
    DedupOptions options;
    options.threshold_ms = threshold;
    size_t out = RemoveDuplicates(log, options, nullptr).size();
    EXPECT_LE(out, previous_out) << threshold;
    previous_out = out;
  }
  DedupOptions unrestricted;
  unrestricted.unrestricted = true;
  EXPECT_LE(RemoveDuplicates(log, unrestricted, nullptr).size(), previous_out);
}

TEST(DedupTest, SortsUnorderedInput) {
  log::QueryLog log;
  log.Append(Make(5000, "u", "SELECT 1"));
  log.Append(Make(1000, "u", "SELECT 1"));
  log.Append(Make(1300, "u", "SELECT 1"));
  // Sorted order: 1000, 1300 (dup), 5000 (kept, gap 3.7s).
  log::QueryLog out = RemoveDuplicates(log, DedupOptions{}, nullptr);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.records()[0].timestamp_ms, 1000);
  EXPECT_EQ(out.records()[1].timestamp_ms, 5000);
}

TEST(DedupTest, OutputIsRenumbered) {
  log::QueryLog log;
  log.Append(Make(1000, "u", "SELECT 1"));
  log.Append(Make(1100, "u", "SELECT 1"));
  log.Append(Make(9000, "u", "SELECT 2"));
  log::QueryLog out = RemoveDuplicates(log, DedupOptions{}, nullptr);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.records()[0].seq, 0u);
  EXPECT_EQ(out.records()[1].seq, 1u);
}

TEST(DedupTest, EmptyLog) {
  log::QueryLog log;
  DedupStats stats;
  EXPECT_EQ(RemoveDuplicates(log, DedupOptions{}, &stats).size(), 0u);
  EXPECT_EQ(stats.removed_count, 0u);
}

TEST(DedupTest, AnonymousUsersShareOneIdentity) {
  // Without user metadata, identical queries from "different people"
  // within the window collapse — the Sec. 6.8 degradation.
  log::QueryLog log;
  log.Append(Make(1000, "", "SELECT 1"));
  log.Append(Make(1200, "", "SELECT 1"));
  EXPECT_EQ(RemoveDuplicates(log, DedupOptions{}, nullptr).size(), 1u);
}

TEST(DedupTest, HashCollisionBetweenDistinctKeysIsNotADuplicate) {
  // Regression: two different (user, statement) pairs whose 64-bit keys
  // collide used to be chained as one key, silently deleting the second
  // query. Real FNV collisions are infeasible to craft, so the test seam
  // forces *every* key onto one hash — full-string verification must
  // still keep distinct pairs apart.
  log::QueryLog log;
  log.Append(Make(1000, "alice", "SELECT 1"));
  log.Append(Make(1100, "bob", "SELECT 2"));    // collides with alice's key
  log.Append(Make(1200, "alice", "SELECT 1"));  // true duplicate of record 0
  log.Append(Make(1300, "bob", "SELECT 2"));    // true duplicate of record 1
  DedupOptions options;
  options.key_hash_for_test = [](std::string_view, std::string_view) {
    return uint64_t{42};
  };
  DedupStats stats;
  log::QueryLog out = RemoveDuplicates(log, options, &stats);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.records()[0].user, "alice");
  EXPECT_EQ(out.records()[1].user, "bob");
  EXPECT_EQ(stats.removed_count, 2u);
}

TEST(DedupTest, CollisionVerificationPreservesChaining) {
  // Under a colliding hash, interleaved bursts of two distinct keys must
  // still chain per key: every repeat is within its own key's window.
  log::QueryLog log;
  for (int i = 0; i < 4; ++i) {
    log.Append(Make(1000 + i * 800, "u", "SELECT 1"));
    log.Append(Make(1400 + i * 800, "v", "SELECT 2"));
  }
  DedupOptions options;
  options.key_hash_for_test = [](std::string_view, std::string_view) {
    return uint64_t{7};
  };
  log::QueryLog out = RemoveDuplicates(log, options, nullptr);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.records()[0].statement, "SELECT 1");
  EXPECT_EQ(out.records()[1].statement, "SELECT 2");
}

TEST(StreamingDeduperTest, MatchesRemoveDuplicatesOnSortedInput) {
  // A mixed workload: bursts, repeats beyond the window, several users,
  // a hash-collision override — fed in time order, the streaming deduper
  // must flag exactly the records RemoveDuplicates drops.
  log::QueryLog log;
  int64_t t = 0;
  const char* users[] = {"a", "b", ""};
  const char* sqls[] = {"SELECT 1", "SELECT 2", "SELECT 3 FROM t"};
  for (int i = 0; i < 120; ++i) {
    t += (i % 5) * 400;  // gaps 0..1600ms: some inside the window, some out
    log.Append(Make(t, users[i % 3], sqls[(i / 2) % 3]));
  }
  log.SortByTime();
  log.Renumber();

  for (bool collide : {false, true}) {
    DedupOptions options;
    if (collide) {
      options.key_hash_for_test = [](std::string_view, std::string_view) {
        return uint64_t{3};
      };
    }
    DedupStats stats;
    log::QueryLog batch_out = RemoveDuplicates(log, options, &stats);

    StreamingDeduper deduper(options);
    log::QueryLog stream_out;
    for (const auto& record : log.records()) {
      if (!deduper.IsDuplicate(record)) stream_out.Append(record);
    }
    stream_out.Renumber();

    ASSERT_EQ(stream_out.size(), batch_out.size()) << "collide=" << collide;
    for (size_t i = 0; i < batch_out.size(); ++i) {
      EXPECT_EQ(stream_out.records()[i].statement, batch_out.records()[i].statement);
      EXPECT_EQ(stream_out.records()[i].timestamp_ms,
                batch_out.records()[i].timestamp_ms);
      EXPECT_EQ(stream_out.records()[i].user, batch_out.records()[i].user);
    }
    EXPECT_EQ(deduper.duplicates_seen(), stats.removed_count);
    EXPECT_EQ(deduper.records_seen(), log.size());
  }
}

TEST(StreamingDeduperTest, CountsDistinctKeysOnce) {
  StreamingDeduper deduper(DedupOptions{});
  EXPECT_FALSE(deduper.IsDuplicate(Make(1000, "u", "SELECT 1")));
  EXPECT_TRUE(deduper.IsDuplicate(Make(1100, "u", "SELECT 1")));
  EXPECT_FALSE(deduper.IsDuplicate(Make(1200, "v", "SELECT 1")));
  EXPECT_EQ(deduper.distinct_keys(), 2u);
  EXPECT_EQ(deduper.records_seen(), 3u);
  EXPECT_EQ(deduper.duplicates_seen(), 1u);
}

}  // namespace
}  // namespace sqlog::core
