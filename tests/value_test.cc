#include "engine/value.h"

#include <gtest/gtest.h>

namespace sqlog::engine {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.kind(), Value::Kind::kNull);
  EXPECT_EQ(v.ToString(), "NULL");
}

TEST(ValueTest, IntRoundTrip) {
  Value v = Value::Int(587722981742LL);
  EXPECT_EQ(v.kind(), Value::Kind::kInt64);
  EXPECT_EQ(v.AsInt(), 587722981742LL);
  EXPECT_EQ(v.ToString(), "587722981742");
  EXPECT_TRUE(v.is_numeric());
}

TEST(ValueTest, RealRoundTrip) {
  Value v = Value::Real(3.5);
  EXPECT_EQ(v.AsDouble(), 3.5);
  EXPECT_EQ(v.AsInt(), 3);
}

TEST(ValueTest, StringCoercions) {
  Value v = Value::Str("42.5");
  EXPECT_EQ(v.AsInt(), 42);
  EXPECT_DOUBLE_EQ(v.AsDouble(), 42.5);
  EXPECT_EQ(v.AsString(), "42.5");
}

TEST(ValueTest, IntComparison) {
  EXPECT_LT(Value::Int(1).Compare(Value::Int(2)), 0);
  EXPECT_EQ(Value::Int(5).Compare(Value::Int(5)), 0);
  EXPECT_GT(Value::Int(9).Compare(Value::Int(2)), 0);
}

TEST(ValueTest, LargeIntComparisonIsExact) {
  // Two objids differing by 1 must not collapse under double rounding.
  int64_t base = 587722981740000000LL;
  EXPECT_LT(Value::Int(base).Compare(Value::Int(base + 1)), 0);
  EXPECT_EQ(Value::Int(base).Compare(Value::Int(base)), 0);
}

TEST(ValueTest, MixedNumericComparison) {
  EXPECT_EQ(Value::Int(3).Compare(Value::Real(3.0)), 0);
  EXPECT_LT(Value::Int(3).Compare(Value::Real(3.5)), 0);
}

TEST(ValueTest, StringComparisonIsCaseInsensitive) {
  EXPECT_EQ(Value::Str("Galaxy").Compare(Value::Str("galaxy")), 0);
  EXPECT_TRUE(Value::Str("Galaxy").Equals(Value::Str("GALAXY")));
  EXPECT_LT(Value::Str("abc").Compare(Value::Str("abd")), 0);
  EXPECT_LT(Value::Str("ab").Compare(Value::Str("abc")), 0);
}

TEST(ValueTest, NullsOrderFirst) {
  EXPECT_LT(Value::Null().Compare(Value::Int(0)), 0);
  EXPECT_GT(Value::Int(0).Compare(Value::Null()), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(ValueTest, KindForColumnType) {
  EXPECT_EQ(KindForColumnType(catalog::ColumnType::kInt64), Value::Kind::kInt64);
  EXPECT_EQ(KindForColumnType(catalog::ColumnType::kDouble), Value::Kind::kDouble);
  EXPECT_EQ(KindForColumnType(catalog::ColumnType::kString), Value::Kind::kString);
}

}  // namespace
}  // namespace sqlog::engine
