#include "analysis/clustering.h"

#include <gtest/gtest.h>

#include "util/string_util.h"

namespace sqlog::analysis {
namespace {

DataSpace SpaceOf(const std::string& sql) {
  auto facts = sqlog::sql::ParseAndAnalyze(sql);
  EXPECT_TRUE(facts.ok()) << sql;
  return ExtractDataSpace(facts.value());
}

TEST(ClusteringTest, IdenticalSpacesFormOneCluster) {
  std::vector<DataSpace> spaces;
  for (int i = 0; i < 5; ++i) spaces.push_back(SpaceOf("SELECT a FROM t WHERE x = 5"));
  auto result = ClusterDataSpaces(spaces, ClusteringOptions{});
  ASSERT_EQ(result.cluster_count(), 1u);
  EXPECT_EQ(result.clusters[0].size(), 5u);
}

TEST(ClusteringTest, DifferentTablesStayApart) {
  std::vector<DataSpace> spaces = {
      SpaceOf("SELECT a FROM t WHERE x = 5"),
      SpaceOf("SELECT a FROM u WHERE x = 5"),
  };
  auto result = ClusterDataSpaces(spaces, ClusteringOptions{});
  EXPECT_EQ(result.cluster_count(), 2u);
}

TEST(ClusteringTest, ThresholdControlsMerging) {
  // Overlap = 5/15 → distance ≈ 0.667.
  std::vector<DataSpace> spaces = {
      SpaceOf("SELECT a FROM t WHERE r BETWEEN 0 AND 10"),
      SpaceOf("SELECT a FROM t WHERE r BETWEEN 5 AND 15"),
  };
  ClusteringOptions tight;
  tight.threshold = 0.5;
  EXPECT_EQ(ClusterDataSpaces(spaces, tight).cluster_count(), 2u);
  ClusteringOptions loose;
  loose.threshold = 0.7;
  EXPECT_EQ(ClusterDataSpaces(spaces, loose).cluster_count(), 1u);
}

TEST(ClusteringTest, SingleLinkageChains) {
  // A↔B and B↔C overlap, A↔C do not: single linkage puts all three in
  // one cluster at a loose threshold.
  std::vector<DataSpace> spaces = {
      SpaceOf("SELECT a FROM t WHERE r BETWEEN 0 AND 10"),
      SpaceOf("SELECT a FROM t WHERE r BETWEEN 8 AND 18"),
      SpaceOf("SELECT a FROM t WHERE r BETWEEN 16 AND 26"),
  };
  ClusteringOptions options;
  options.threshold = 0.95;
  auto result = ClusterDataSpaces(spaces, options);
  EXPECT_EQ(result.cluster_count(), 1u);
}

TEST(ClusteringTest, ClustersSortedBySizeDescending) {
  std::vector<DataSpace> spaces;
  for (int i = 0; i < 3; ++i) spaces.push_back(SpaceOf("SELECT a FROM t WHERE x = 1"));
  spaces.push_back(SpaceOf("SELECT a FROM u WHERE x = 1"));
  auto result = ClusterDataSpaces(spaces, ClusteringOptions{});
  ASSERT_EQ(result.cluster_count(), 2u);
  EXPECT_GE(result.clusters[0].size(), result.clusters[1].size());
}

TEST(ClusteringTest, MembersCoverAllInputsExactlyOnce) {
  std::vector<DataSpace> spaces;
  for (int i = 0; i < 10; ++i) {
    spaces.push_back(SpaceOf(sqlog::StrFormat("SELECT a FROM t WHERE x = %d", i % 3)));
  }
  auto result = ClusterDataSpaces(spaces, ClusteringOptions{});
  std::vector<bool> seen(spaces.size(), false);
  for (const auto& cluster : result.clusters) {
    for (size_t member : cluster.members) {
      ASSERT_LT(member, spaces.size());
      EXPECT_FALSE(seen[member]);
      seen[member] = true;
    }
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(ClusteringTest, AverageSize) {
  std::vector<DataSpace> spaces = {
      SpaceOf("SELECT a FROM t WHERE x = 1"),
      SpaceOf("SELECT a FROM t WHERE x = 1"),
      SpaceOf("SELECT a FROM u WHERE x = 1"),
  };
  auto result = ClusterDataSpaces(spaces, ClusteringOptions{});
  EXPECT_DOUBLE_EQ(result.average_size(), 1.5);
}

TEST(ClusteringTest, EmptyInput) {
  auto result = ClusterDataSpaces({}, ClusteringOptions{});
  EXPECT_EQ(result.cluster_count(), 0u);
  EXPECT_EQ(result.average_size(), 0.0);
}

TEST(ClusteringTest, RuntimeIsRecorded) {
  std::vector<DataSpace> spaces;
  for (int i = 0; i < 100; ++i) {
    spaces.push_back(SpaceOf(sqlog::StrFormat("SELECT a FROM t WHERE x = %d", i)));
  }
  auto result = ClusterDataSpaces(spaces, ClusteringOptions{});
  EXPECT_GE(result.runtime_seconds, 0.0);
  EXPECT_EQ(result.cluster_count(), 100u);  // distinct points stay apart
}

TEST(ClusteringTest, ScalesViaSignatureCollapse) {
  // 20k identical spaces must cluster instantly (one distinct group).
  std::vector<DataSpace> spaces;
  for (int i = 0; i < 20000; ++i) {
    spaces.push_back(SpaceOf("SELECT a FROM t WHERE x = 5"));
  }
  auto result = ClusterDataSpaces(spaces, ClusteringOptions{});
  ASSERT_EQ(result.cluster_count(), 1u);
  EXPECT_EQ(result.clusters[0].size(), 20000u);
  EXPECT_LT(result.runtime_seconds, 2.0);
}

}  // namespace
}  // namespace sqlog::analysis
