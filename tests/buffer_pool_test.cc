#include "engine/buffer_pool.h"

#include <gtest/gtest.h>

#include <cstring>
#include <utility>
#include <vector>

namespace sqlog::engine {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_TRUE(file_.Open("").ok()); }

  PageFile file_;
};

TEST_F(BufferPoolTest, NewPageIsZeroedAndSurvivesEviction) {
  BufferPool pool(&file_, 2);
  PageId a = kInvalidPageId;
  {
    auto ref = pool.New(&a);
    ASSERT_TRUE(ref.ok()) << ref.status().ToString();
    for (size_t i = 0; i < kPageSize; ++i) {
      ASSERT_EQ(ref->data()[i], 0) << "new page not zeroed at byte " << i;
    }
    std::memcpy(ref->data(), "hello", 5);
    ref->MarkDirty();
  }
  // Fill the pool with two other pages so `a` must be evicted (and, being
  // dirty, written back).
  PageId b = kInvalidPageId;
  PageId c = kInvalidPageId;
  {
    auto rb = pool.New(&b);
    auto rc = pool.New(&c);
    ASSERT_TRUE(rb.ok());
    ASSERT_TRUE(rc.ok());
  }
  EXPECT_GE(pool.stats().evictions, 1u);
  EXPECT_GE(pool.stats().writebacks, 1u);
  auto back = pool.Fetch(a);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(std::memcmp(back->data(), "hello", 5), 0);
}

TEST_F(BufferPoolTest, EvictsLeastRecentlyUnpinnedFirst) {
  BufferPool pool(&file_, 3);
  PageId ids[3];
  for (int i = 0; i < 3; ++i) {
    auto ref = pool.New(&ids[i]);
    ASSERT_TRUE(ref.ok());
    ref->data()[0] = static_cast<char>('a' + i);
    ref->MarkDirty();
  }
  // Touch page 0 so page 1 becomes the LRU victim.
  { auto r = pool.Fetch(ids[0]); ASSERT_TRUE(r.ok()); }
  const uint64_t evictions_before = pool.stats().evictions;
  PageId fresh = kInvalidPageId;
  { auto r = pool.New(&fresh); ASSERT_TRUE(r.ok()); }
  EXPECT_EQ(pool.stats().evictions, evictions_before + 1);
  // Pages 0 and 2 must still be resident: fetching them is a hit.
  const uint64_t misses_before = pool.stats().misses;
  { auto r = pool.Fetch(ids[0]); ASSERT_TRUE(r.ok()); }
  { auto r = pool.Fetch(ids[2]); ASSERT_TRUE(r.ok()); }
  EXPECT_EQ(pool.stats().misses, misses_before);
  // Page 1 was the victim: fetching it is a miss, and its bytes come back
  // from the file.
  auto victim = pool.Fetch(ids[1]);
  ASSERT_TRUE(victim.ok());
  EXPECT_EQ(pool.stats().misses, misses_before + 1);
  EXPECT_EQ(victim->data()[0], 'b');
}

TEST_F(BufferPoolTest, PinStarvationFailsInsteadOfBlocking) {
  BufferPool pool(&file_, 2);
  PageId a = kInvalidPageId;
  PageId b = kInvalidPageId;
  auto ra = pool.New(&a);
  auto rb = pool.New(&b);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  PageId c = kInvalidPageId;
  auto rc = pool.New(&c);
  ASSERT_FALSE(rc.ok());
  EXPECT_EQ(rc.status().code(), StatusCode::kIoError);
  // Releasing one pin frees a frame and the pool recovers.
  ra->Release();
  auto retry = pool.New(&c);
  EXPECT_TRUE(retry.ok()) << retry.status().ToString();
}

TEST_F(BufferPoolTest, DoublePinSharesTheFrame) {
  BufferPool pool(&file_, 2);
  PageId a = kInvalidPageId;
  auto first = pool.New(&a);
  ASSERT_TRUE(first.ok());
  auto second = pool.Fetch(a);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->data(), second->data());
  EXPECT_EQ(pool.stats().hits, 1u);
}

TEST_F(BufferPoolTest, FlushAllPersistsDirtyPages) {
  PageId a = kInvalidPageId;
  {
    BufferPool pool(&file_, 4);
    auto ref = pool.New(&a);
    ASSERT_TRUE(ref.ok());
    std::memcpy(ref->data(), "durable", 7);
    ref->MarkDirty();
    ref->Release();
    ASSERT_TRUE(pool.FlushAll().ok());
    // Still resident + clean: a second flush must not rewrite it.
    const uint64_t wb = pool.stats().writebacks;
    ASSERT_TRUE(pool.FlushAll().ok());
    EXPECT_EQ(pool.stats().writebacks, wb);
  }
  // A fresh pool over the same file sees the flushed bytes.
  BufferPool pool2(&file_, 4);
  auto back = pool2.Fetch(a);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(std::memcmp(back->data(), "durable", 7), 0);
}

TEST_F(BufferPoolTest, MovedFromRefReleasesOnce) {
  BufferPool pool(&file_, 1);
  PageId a = kInvalidPageId;
  auto ref = pool.New(&a);
  ASSERT_TRUE(ref.ok());
  BufferPool::PageRef moved = std::move(ref).value();
  BufferPool::PageRef again = std::move(moved);
  EXPECT_FALSE(moved.valid());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(again.valid());
  again.Release();
  again.Release();  // idempotent
  // The single frame is reusable — the pin count did not underflow or leak.
  PageId b = kInvalidPageId;
  EXPECT_TRUE(pool.New(&b).ok());
}

TEST_F(BufferPoolTest, ReadPastAllocatedTailIsRejected) {
  char buf[kPageSize];
  EXPECT_EQ(file_.Read(7, buf).code(), StatusCode::kOutOfRange);
  PageId id = file_.Allocate();
  // Allocated but never written: reads back as zeros.
  ASSERT_TRUE(file_.Read(id, buf).ok());
  for (size_t i = 0; i < kPageSize; ++i) ASSERT_EQ(buf[i], 0);
}

}  // namespace
}  // namespace sqlog::engine
