#include "util/status.h"

#include <gtest/gtest.h>

namespace sqlog {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unsupported("x").code(), StatusCode::kUnsupported);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Internal("boom").message(), "boom");
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  Status s = Status::ParseError("unexpected token");
  EXPECT_EQ(s.ToString(), "ParseError: unexpected token");
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kParseError), "ParseError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r.value_or("fallback"), "hello");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  std::unique_ptr<int> owned = std::move(r).value();
  ASSERT_NE(owned, nullptr);
  EXPECT_EQ(*owned, 7);
}

Status FailsWhenNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chained(int x) {
  SQLOG_RETURN_IF_ERROR(FailsWhenNegative(x));
  return Status::OK();
}

TEST(ResultTest, ReturnIfErrorMacroPropagates) {
  EXPECT_TRUE(Chained(1).ok());
  EXPECT_EQ(Chained(-1).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace sqlog
