#include "sql/ast.h"

#include <gtest/gtest.h>

#include "sql/parser.h"
#include "sql/printer.h"

namespace sqlog::sql {
namespace {

TEST(ClassifyTest, BasicKinds) {
  EXPECT_EQ(ClassifyStatement("SELECT 1"), StatementKind::kSelect);
  EXPECT_EQ(ClassifyStatement("select 1"), StatementKind::kSelect);
  EXPECT_EQ(ClassifyStatement("INSERT INTO t VALUES (1)"), StatementKind::kInsert);
  EXPECT_EQ(ClassifyStatement("UPDATE t SET a = 1"), StatementKind::kUpdate);
  EXPECT_EQ(ClassifyStatement("DELETE FROM t"), StatementKind::kDelete);
  EXPECT_EQ(ClassifyStatement("CREATE TABLE t (a int)"), StatementKind::kCreate);
  EXPECT_EQ(ClassifyStatement("DROP TABLE t"), StatementKind::kDrop);
  EXPECT_EQ(ClassifyStatement("ALTER TABLE t ADD b int"), StatementKind::kAlter);
  EXPECT_EQ(ClassifyStatement("EXEC spGetStats"), StatementKind::kOther);
  EXPECT_EQ(ClassifyStatement(""), StatementKind::kOther);
}

TEST(ClassifyTest, LeadingWhitespaceAndComments) {
  EXPECT_EQ(ClassifyStatement("   \n\t SELECT 1"), StatementKind::kSelect);
  EXPECT_EQ(ClassifyStatement("-- note\nSELECT 1"), StatementKind::kSelect);
  EXPECT_EQ(ClassifyStatement("/* block */ SELECT 1"), StatementKind::kSelect);
  EXPECT_EQ(ClassifyStatement("-- only a comment"), StatementKind::kOther);
  EXPECT_EQ(ClassifyStatement("/* unterminated"), StatementKind::kOther);
}

TEST(ClassifyTest, ParenthesizedSelect) {
  EXPECT_EQ(ClassifyStatement("(SELECT 1)"), StatementKind::kSelect);
  EXPECT_EQ(ClassifyStatement("((SELECT 1))"), StatementKind::kSelect);
}

TEST(ClassifyTest, KindNames) {
  EXPECT_STREQ(StatementKindName(StatementKind::kSelect), "SELECT");
  EXPECT_STREQ(StatementKindName(StatementKind::kInsert), "INSERT");
  EXPECT_STREQ(StatementKindName(StatementKind::kOther), "OTHER");
}

/// Clones must be deep: printing both before and after the original is
/// destroyed yields the same text.
TEST(CloneTest, DeepCopyFullStatement) {
  const char* sql =
      "SELECT DISTINCT TOP 5 a, b AS x, count(*), t.*, -3, 'lit', @v, "
      "CASE WHEN a = 1 THEN 'x' ELSE 'y' END "
      "FROM t1 AS t INNER JOIN (SELECT c FROM t2) s ON t.id = s.c, "
      "fGetNearbyObjEq(1, 2, 3) n "
      "WHERE a BETWEEN 1 AND 2 AND b IN (1, 2) AND c IN (SELECT d FROM t3) "
      "AND EXISTS (SELECT 1 FROM t4) AND e IS NOT NULL AND f LIKE 'x%' "
      "AND NOT (g = 1 OR h = 2) "
      "GROUP BY a HAVING count(*) > 1 ORDER BY a DESC, b";
  auto parsed = ParseSelect(sql);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  PrintOptions opts;
  std::string original_text = Print(*parsed.value(), opts);
  StmtPtr clone = parsed.value()->Clone();
  std::string clone_text_before = Print(*clone, opts);
  parsed.value().reset();  // destroy the original
  std::string clone_text_after = Print(*clone, opts);

  EXPECT_EQ(clone_text_before, original_text);
  EXPECT_EQ(clone_text_after, original_text);
}

TEST(CloneTest, MutatingCloneLeavesOriginalIntact) {
  auto parsed = ParseSelect("SELECT a FROM t WHERE x = 1");
  ASSERT_TRUE(parsed.ok());
  auto clone = parsed.value()->Clone();
  clone->select_items.clear();
  clone->where = nullptr;
  PrintOptions opts;
  EXPECT_EQ(Print(*parsed.value(), opts), "select a from t where x = 1");
}

TEST(CloneTest, ExpressionCloneKindsMatch) {
  const char* exprs[] = {
      "SELECT a + b * -c FROM t",
      "SELECT a FROM t WHERE x IN (1,2,3)",
      "SELECT a FROM t WHERE x IS NULL",
      "SELECT a FROM t WHERE x LIKE 'p%'",
      "SELECT (SELECT max(b) FROM u) FROM t",
  };
  PrintOptions opts;
  for (const char* sql : exprs) {
    auto parsed = ParseSelect(sql);
    ASSERT_TRUE(parsed.ok()) << sql;
    const Expr& original = *parsed.value()->select_items[0].expr;
    auto clone = original.Clone();
    EXPECT_EQ(clone->kind(), original.kind());
    EXPECT_EQ(Print(*clone, opts), Print(original, opts)) << sql;
  }
}

TEST(SelectItemTest, CopyIsDeep) {
  auto parsed = ParseSelect("SELECT a AS x FROM t");
  ASSERT_TRUE(parsed.ok());
  SelectItem copy = parsed.value()->select_items[0].Copy();
  EXPECT_EQ(copy.alias, "x");
  EXPECT_NE(copy.expr.get(), parsed.value()->select_items[0].expr.get());
}

TEST(OrderByItemTest, CopyPreservesDirection) {
  auto parsed = ParseSelect("SELECT a FROM t ORDER BY a DESC");
  ASSERT_TRUE(parsed.ok());
  OrderByItem copy = parsed.value()->order_by[0].Copy();
  EXPECT_TRUE(copy.descending);
}

}  // namespace
}  // namespace sqlog::sql
