// Memory-budget smoke test for the streaming ingestion path: a log of
// ~1M records (far larger than the allowed RSS) is cleaned end to end
// with Pipeline::RunStreaming, and the process's peak RSS must stay
// under a fixed cap — proving peak memory is bounded by the batch size
// plus the distinct-statement state, not the log length. The in-memory
// path would hold the raw text (plus its time-sorted copy) and blow
// straight through the cap.

#include <gtest/gtest.h>

#include <sys/resource.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "catalog/schema.h"
#include "core/pipeline.h"
#include "log/log_stream.h"
#include "log/record.h"

namespace sqlog {
namespace {

size_t PeakRssBytes() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
#ifdef __APPLE__
  return static_cast<size_t>(usage.ru_maxrss);  // bytes
#else
  return static_cast<size_t>(usage.ru_maxrss) * 1024;  // kilobytes
#endif
}

constexpr size_t kBursts = 1000;
constexpr size_t kRecordsPerBurst = 1000;  // kBursts * kRecordsPerBurst = 1M
constexpr size_t kUsers = 20;

// Writes the giant log incrementally — the writer's buffer is bounded,
// so generation itself cannot inflate the peak RSS the test measures.
void WriteGiantLog(const std::string& path, uint64_t* bytes_written) {
  log::LogWriterOptions options;
  options.renumber = true;
  log::LogWriter writer(options);
  ASSERT_TRUE(writer.Open(path).ok());
  log::LogRecord record;
  record.row_count = 42;
  for (size_t burst = 0; burst < kBursts; ++burst) {
    record.user = "user_" + std::to_string(burst % kUsers);
    record.session = record.user + "#1";
    // One distinct statement per burst; repeats land within the dedup
    // window, so each burst collapses to its first record.
    record.statement =
        "SELECT object_id, right_ascension, declination, magnitude_r "
        "FROM photo_objects_" +
        std::to_string(burst) + " WHERE object_id = " + std::to_string(burst * 7) +
        " AND magnitude_r < 22.5";
    for (size_t j = 0; j < kRecordsPerBurst; ++j) {
      record.timestamp_ms =
          static_cast<int64_t>(burst) * 5000 + static_cast<int64_t>(j) * 4;
      ASSERT_TRUE(writer.Append(record).ok());
    }
  }
  ASSERT_TRUE(writer.Close().ok());
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  *bytes_written = static_cast<uint64_t>(in.tellg());
}

TEST(MemoryBudgetTest, StreamingPipelinePeakRssStaysUnderCap) {
  const std::string input_path = ::testing::TempDir() + "/memory_budget_input.csv";
  const std::string clean_path = ::testing::TempDir() + "/memory_budget_clean.csv";
  const std::string removal_path = ::testing::TempDir() + "/memory_budget_removal.csv";

  uint64_t input_bytes = 0;
  WriteGiantLog(input_path, &input_bytes);
  ASSERT_GT(input_bytes, 100ull << 20) << "input must dwarf the RSS cap";

  static catalog::Schema schema = catalog::MakeSkyServerSchema();
  auto pipeline = core::PipelineBuilder()
                      .WithSchema(&schema)
                      .Streaming(true)
                      .BatchSize(4096)
                      .Build();
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  auto run = pipeline->RunStreaming(input_path, clean_path, removal_path);
  std::remove(input_path.c_str());
  std::remove(clean_path.c_str());
  std::remove(removal_path.c_str());
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  // Sanity: the whole log went through and the bursts collapsed.
  EXPECT_EQ(run->stats.original_size, kBursts * kRecordsPerBurst);
  EXPECT_EQ(run->stats.after_dedup_size, kBursts);
  EXPECT_EQ(run->stats.select_count, kBursts);
  EXPECT_EQ(run->stats.syntax_error_count, 0u);

  const size_t peak = PeakRssBytes();
  constexpr size_t kCapBytes = 256ull << 20;
  EXPECT_LT(peak, kCapBytes) << "streaming pipeline peak RSS "
                             << (peak >> 20) << " MiB exceeds the "
                             << (kCapBytes >> 20) << " MiB budget";
  // The sharper claim: peak RSS stays below the raw input size itself.
  EXPECT_LT(peak, input_bytes);
}

}  // namespace
}  // namespace sqlog
