// Detector-plugin registry tests: metadata validation, set resolution,
// the SQLCheck-derived catalog additions measured against generator
// ground truth (precision/recall >= 0.95 per detector), rewrite rules,
// and streaming/in-memory equivalence with the expanded set.

#include "core/detector.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "catalog/schema.h"
#include "core/pipeline.h"
#include "log/generator.h"
#include "log/log_io.h"
#include "sql/skeleton.h"
#include "util/string_util.h"

namespace sqlog {
namespace {

using core::DetectorOptions;
using core::DetectorRegistry;
using core::DetectorSet;

std::vector<std::string> ExpandedIds() {
  std::vector<std::string> ids = core::DefaultDetectorIds();
  ids.insert(ids.end(), {"select-star", "null-fear", "spaghetti-join", "non-sargable"});
  return ids;
}

// --- registry metadata ------------------------------------------------------

TEST(DetectorRegistryTest, GlobalRegistryCarriesBuiltinsAndTheirMetadata) {
  DetectorRegistry& registry = DetectorRegistry::Global();
  for (const std::string& id : ExpandedIds()) {
    EXPECT_NE(registry.Find(id), nullptr) << id;
  }

  auto dw = registry.Find("dw-stifle");
  ASSERT_NE(dw, nullptr);
  EXPECT_EQ(dw->info().display_name, "DW-Stifle");
  EXPECT_EQ(dw->info().scope, core::DetectorScope::kSequence);
  EXPECT_EQ(dw->info().scan_group, "stifle");
  EXPECT_TRUE(dw->info().solvable);
  EXPECT_EQ(dw->info().legacy_type, core::AntipatternType::kDwStifle);

  auto cth = registry.Find("cth");
  ASSERT_NE(cth, nullptr);
  EXPECT_FALSE(cth->info().solvable);
  EXPECT_TRUE(cth->info().min_support_filtered);

  auto star = registry.Find("select-star");
  ASSERT_NE(star, nullptr);
  EXPECT_EQ(star->info().display_name, "Implicit Columns");
  EXPECT_EQ(star->info().scope, core::DetectorScope::kPerQuery);
  EXPECT_FALSE(star->info().solvable);
  EXPECT_EQ(star->info().legacy_type, core::AntipatternType::kCustom);
  EXPECT_FALSE(star->info().needs_ast);

  ASSERT_NE(registry.Find("null-fear"), nullptr);
  EXPECT_TRUE(registry.Find("null-fear")->info().solvable);
  ASSERT_NE(registry.Find("non-sargable"), nullptr);
  EXPECT_TRUE(registry.Find("non-sargable")->info().solvable);
  ASSERT_NE(registry.Find("spaghetti-join"), nullptr);
  EXPECT_FALSE(registry.Find("spaghetti-join")->info().solvable);
}

/// Minimal detector for registration-contract tests.
class StubDetector : public core::Detector {
 public:
  explicit StubDetector(core::DetectorInfo info) : info_(std::move(info)) {}
  const core::DetectorInfo& info() const override { return info_; }

 private:
  core::DetectorInfo info_;
};

TEST(DetectorRegistryTest, RegistrationEnforcesTheMetadataContract) {
  DetectorRegistry registry;

  core::DetectorInfo no_id;
  no_id.display_name = "Nameless";
  EXPECT_FALSE(registry.Register(std::make_shared<StubDetector>(no_id)).ok());

  core::DetectorInfo no_name;
  no_name.id = "anonymous";
  EXPECT_FALSE(registry.Register(std::make_shared<StubDetector>(no_name)).ok());

  core::DetectorInfo good;
  good.id = "stub";
  good.display_name = "Stub";
  EXPECT_TRUE(registry.Register(std::make_shared<StubDetector>(good)).ok());
  EXPECT_NE(registry.Find("stub"), nullptr);

  // Ids are unique: a second registration under the same id fails.
  EXPECT_FALSE(registry.Register(std::make_shared<StubDetector>(good)).ok());
}

TEST(DetectorSetTest, EmptySelectionResolvesToThePaperDefaults) {
  DetectorOptions options;
  auto set = DetectorSet::Resolve(options);
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  const auto& ids = core::DefaultDetectorIds();
  ASSERT_EQ(set.value()->size(), ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(set.value()->info(i).id, ids[i]);
    EXPECT_EQ(set.value()->IndexOf(ids[i]), static_cast<int>(i));
  }
  EXPECT_FALSE(set.value()->AnyNeedsAst());
}

TEST(DetectorSetTest, ResolveRejectsUnknownAndDuplicateIds) {
  DetectorOptions options;
  options.detector_ids = {"no-such-detector"};
  EXPECT_FALSE(DetectorSet::Resolve(options).ok());

  options.detector_ids = {"snc", "snc"};
  EXPECT_FALSE(DetectorSet::Resolve(options).ok());
}

TEST(DetectorSetTest, CustomRulesAppendAdapterDetectors) {
  DetectorOptions options;
  options.detector_ids = {"snc"};
  options.custom_rules = {core::MakeSelectStarRule()};
  auto set = DetectorSet::Resolve(options);
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  ASSERT_EQ(set.value()->size(), 2u);
  EXPECT_EQ(set.value()->info(1).custom_rule, 0);
  EXPECT_TRUE(set.value()->info(1).needs_ast);
  EXPECT_TRUE(set.value()->AnyNeedsAst());
}

// --- precision/recall against generator ground truth ------------------------

/// Workload mix for the catalog-expansion families: the four new
/// detectors' families are cranked up and the two confounders are
/// zeroed (the SNC family emits `SELECT * FROM Bugs ...`, the CTH
/// probes emit `SELECT *` over a TVF — both would read as
/// implicit-columns hits with foreign labels).
log::GeneratorConfig ExpansionConfig() {
  log::GeneratorConfig config;
  config.seed = 20260809;
  config.target_statements = 6000;
  config.human_users = 40;
  config.sws_families = 4;
  config.cth_families = 4;
  config.frac_cth = 0.0;
  config.frac_snc = 0.0;
  config.frac_select_star = 0.15;
  config.frac_null_fear = 0.15;
  config.frac_spaghetti_join = 0.15;
  config.frac_non_sargable = 0.15;
  return config;
}

class CatalogExpansionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    raw_ = new log::QueryLog(log::GenerateLog(ExpansionConfig()));
    schema_ = new catalog::Schema(catalog::MakeSkyServerSchema());
    auto pipeline = core::PipelineBuilder()
                        .WithSchema(schema_)
                        .Detectors(ExpandedIds())
                        .Build();
    ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
    auto result = pipeline->Run(*raw_);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    result_ = new core::PipelineResult(std::move(result.value()));
  }

  static void TearDownTestSuite() {
    delete result_;
    delete schema_;
    delete raw_;
    result_ = nullptr;
    schema_ = nullptr;
    raw_ = nullptr;
  }

  /// Precision/recall of one detector against one truth label, over the
  /// parsed (post-dedup) queries.
  void CheckPrecisionRecall(const std::string& detector_id, log::TruthLabel label) {
    int index = result_->antipatterns.detectors->IndexOf(detector_id);
    ASSERT_GE(index, 0) << detector_id;

    std::unordered_set<size_t> flagged;
    for (const auto& instance : result_->antipatterns.instances) {
      if (instance.detector != static_cast<uint32_t>(index)) continue;
      flagged.insert(instance.query_indices.begin(), instance.query_indices.end());
    }
    ASSERT_GT(flagged.size(), 100u) << detector_id << ": sample too small";

    size_t true_positives = 0;
    size_t labelled = 0;
    for (size_t q = 0; q < result_->parsed.queries.size(); ++q) {
      size_t record = result_->parsed.queries[q].record_index;
      bool is_labelled = result_->pre_clean.records()[record].truth == label;
      labelled += is_labelled;
      true_positives += is_labelled && flagged.count(q) > 0;
    }
    ASSERT_GT(labelled, 0u);

    double precision =
        static_cast<double>(true_positives) / static_cast<double>(flagged.size());
    double recall = static_cast<double>(true_positives) / static_cast<double>(labelled);
    EXPECT_GE(precision, 0.95) << detector_id;
    EXPECT_GE(recall, 0.95) << detector_id;
  }

  static log::QueryLog* raw_;
  static catalog::Schema* schema_;
  static core::PipelineResult* result_;
};

log::QueryLog* CatalogExpansionTest::raw_ = nullptr;
catalog::Schema* CatalogExpansionTest::schema_ = nullptr;
core::PipelineResult* CatalogExpansionTest::result_ = nullptr;

TEST_F(CatalogExpansionTest, SelectStarPrecisionRecall) {
  CheckPrecisionRecall("select-star", log::TruthLabel::kSelectStar);
}

TEST_F(CatalogExpansionTest, NullFearPrecisionRecall) {
  CheckPrecisionRecall("null-fear", log::TruthLabel::kNullFear);
}

TEST_F(CatalogExpansionTest, SpaghettiJoinPrecisionRecall) {
  CheckPrecisionRecall("spaghetti-join", log::TruthLabel::kSpaghettiJoin);
}

TEST_F(CatalogExpansionTest, NonSargablePrecisionRecall) {
  CheckPrecisionRecall("non-sargable", log::TruthLabel::kNonSargable);
}

TEST_F(CatalogExpansionTest, StatisticsGrowPerDetectorRows) {
  // Detectors beyond the paper's set surface as extra overview rows;
  // the default set leaves extra_detectors empty (golden-stable).
  const std::string table = result_->stats.ToTable();
  for (const char* name :
       {"Implicit Columns", "Fear of the Unknown", "Implicit Cross Join",
        "Non-Sargable Filter"}) {
    EXPECT_NE(table.find(name), std::string::npos) << name;
  }
}

TEST_F(CatalogExpansionTest, SolvableAdditionsAreSolvedCleanly) {
  // null-fear and non-sargable ship rewrites: every one of their
  // instances must be solved, with zero rewrite failures overall.
  EXPECT_EQ(result_->stats.solve.rewrite_failures, 0u);
  uint64_t solvable_hits = 0;
  for (const auto& instance : result_->antipatterns.instances) {
    solvable_hits += result_->antipatterns.detectors->Solvable(instance);
  }
  EXPECT_GT(solvable_hits, 0u);
}

// --- rewrite rules -----------------------------------------------------------

log::QueryLog OneUserLog(const std::vector<std::string>& statements) {
  log::QueryLog log;
  for (size_t i = 0; i < statements.size(); ++i) {
    log::LogRecord record;
    record.seq = i;
    record.timestamp_ms = 1041379200000LL + static_cast<int64_t>(i) * 5000;
    record.user = "10.1.2.3";
    record.session = "10.1.2.3#0";
    record.statement = statements[i];
    log.Append(std::move(record));
  }
  return log;
}

core::PipelineResult RunWith(const std::vector<std::string>& detector_ids,
                             const log::QueryLog& raw, const catalog::Schema* schema) {
  core::PipelineBuilder builder;
  if (schema != nullptr) builder.WithSchema(schema);
  auto pipeline = builder.Detectors(detector_ids).MinePatterns(false).Build();
  EXPECT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  auto result = pipeline->Run(raw);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result.value());
}

TEST(DetectorRewriteTest, NullFearRewriteAddsAnIsNullGuard) {
  const catalog::Schema schema = catalog::MakeSkyServerSchema();
  auto result = RunWith(
      {"null-fear"},
      OneUserLog({"SELECT bugId, status FROM Bugs WHERE assigned_to <> 7"}), &schema);

  ASSERT_EQ(result.antipatterns.instances.size(), 1u);
  EXPECT_EQ(result.stats.solve.rewrite_failures, 0u);
  EXPECT_EQ(result.stats.solve.queries_rewritten_in_place, 1u);
  ASSERT_EQ(result.clean_log.size(), 1u);
  const std::string clean = ToLower(result.clean_log.records()[0].statement);
  EXPECT_NE(clean.find("assigned_to is null"), std::string::npos) << clean;
  EXPECT_NE(clean.find(" or "), std::string::npos) << clean;
  EXPECT_TRUE(sql::ParseAndAnalyze(result.clean_log.records()[0].statement).ok());
}

TEST(DetectorRewriteTest, NonSargableRewriteFoldsTheConstantAcross) {
  const catalog::Schema schema = catalog::MakeSkyServerSchema();
  auto result = RunWith(
      {"non-sargable"},
      OneUserLog({"SELECT bugId, status FROM Bugs WHERE bugId + 7 > 102"}), &schema);

  ASSERT_EQ(result.antipatterns.instances.size(), 1u);
  EXPECT_EQ(result.stats.solve.rewrite_failures, 0u);
  ASSERT_EQ(result.clean_log.size(), 1u);
  auto facts = sql::ParseAndAnalyze(result.clean_log.records()[0].statement);
  ASSERT_TRUE(facts.ok()) << result.clean_log.records()[0].statement;
  ASSERT_EQ(facts->predicate_count(), 1);
  EXPECT_FALSE(facts->predicates[0].lhs_computed);
  EXPECT_EQ(facts->predicates[0].column, "bugid");
  EXPECT_NE(result.clean_log.records()[0].statement.find("95"), std::string::npos)
      << result.clean_log.records()[0].statement;
}

TEST(DetectorRewriteTest, DetectOnlyAdditionsKeepTheQueryVerbatim) {
  const catalog::Schema schema = catalog::MakeSkyServerSchema();
  const std::string star = "SELECT * FROM specObjAll WHERE z > 0.5 and zErr < 0.01";
  const std::string cross =
      "SELECT p.objID, s.z FROM photoPrimary p, specObjAll s WHERE s.z > 0.5";
  auto result =
      RunWith({"select-star", "spaghetti-join"}, OneUserLog({star, cross}), &schema);

  ASSERT_EQ(result.antipatterns.instances.size(), 2u);
  EXPECT_EQ(result.stats.solve.instances_unsolvable, 2u);
  ASSERT_EQ(result.clean_log.size(), 2u);
  EXPECT_EQ(result.clean_log.records()[0].statement, star);
  EXPECT_EQ(result.clean_log.records()[1].statement, cross);
  // The removal log drops members of *solvable* instances only;
  // detect-only hits are annotations, not removals.
  EXPECT_EQ(result.removal_log.size(), 0u);
}

TEST(DetectorRewriteTest, SchemaAwareDetectorsStayQuietWithoutASchema) {
  auto result = RunWith(
      {"null-fear", "non-sargable"},
      OneUserLog({"SELECT bugId, status FROM Bugs WHERE assigned_to <> 7",
                  "SELECT bugId, status FROM Bugs WHERE bugId + 7 > 102"}),
      nullptr);
  EXPECT_TRUE(result.antipatterns.instances.empty());
}

// --- streaming equivalence with the expanded set -----------------------------

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(CatalogExpansionStreamingTest, StreamingMatchesInMemoryWithTheExpandedSet) {
  log::GeneratorConfig config = ExpansionConfig();
  config.target_statements = 2500;
  const log::QueryLog raw = log::GenerateLog(config);
  const catalog::Schema schema = catalog::MakeSkyServerSchema();

  auto reference_pipeline = core::PipelineBuilder()
                                .WithSchema(&schema)
                                .Detectors(ExpandedIds())
                                .Build();
  ASSERT_TRUE(reference_pipeline.ok());
  auto reference = reference_pipeline->Run(raw);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  const std::string input_path = ::testing::TempDir() + "/expanded_stream_input.csv";
  const std::string clean_path = ::testing::TempDir() + "/expanded_stream_clean.csv";
  const std::string removal_path = ::testing::TempDir() + "/expanded_stream_removal.csv";
  ASSERT_TRUE(log::LogIo::WriteFile(raw, input_path).ok());

  for (size_t threads : {size_t{1}, size_t{8}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    auto pipeline = core::PipelineBuilder()
                        .WithSchema(&schema)
                        .Detectors(ExpandedIds())
                        .NumThreads(threads)
                        .Streaming(true)
                        .BatchSize(512)
                        .Build();
    ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
    auto run = pipeline->RunStreaming(input_path, clean_path, removal_path);
    ASSERT_TRUE(run.ok()) << run.status().ToString();

    EXPECT_EQ(run->stats.ToTable(), reference->stats.ToTable());
    EXPECT_EQ(ReadAll(clean_path), log::LogIo::ToCsv(reference->clean_log));
    EXPECT_EQ(ReadAll(removal_path), log::LogIo::ToCsv(reference->removal_log));
    std::remove(clean_path.c_str());
    std::remove(removal_path.c_str());
  }
  std::remove(input_path.c_str());
}

}  // namespace
}  // namespace sqlog
