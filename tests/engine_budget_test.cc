// Out-of-core memory-budget test for the storage engine: photoprimary
// is populated far past the buffer pool's capacity, indexed, and
// point-queried, and the process's peak RSS must stay bounded by the
// pool budget plus fixed slack — proving the paged backend really pages
// rather than caching the table. The in-memory backend over the same
// row count holds every Value materialized and would blow the cap.

#include <gtest/gtest.h>

#include <sys/resource.h>

#include "engine/database.h"
#include "engine/executor.h"
#include "engine/table_heap.h"
#include "util/string_util.h"

namespace sqlog::engine {
namespace {

size_t PeakRssBytes() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
#ifdef __APPLE__
  return static_cast<size_t>(usage.ru_maxrss);  // bytes
#else
  return static_cast<size_t>(usage.ru_maxrss) * 1024;  // kilobytes
#endif
}

TEST(EngineBudgetTest, PagedTableLargerThanPoolStaysUnderRssCap) {
  constexpr size_t kRows = 400000;
  DatabaseOptions options;
  options.storage = StorageMode::kPaged;
  options.buffer_pool_pages = 512;  // 4 MiB pool
  Database db(options);
  ASSERT_TRUE(PopulatePhotoPrimary(db, kRows).ok());
  ASSERT_TRUE(db.CreateIndex("photoprimary", "objid").ok());

  const Table* table = db.FindTable("photoprimary");
  ASSERT_NE(table, nullptr);
  const auto* paged = static_cast<const PagedTable*>(table);
  ASSERT_NE(db.buffer_pool(), nullptr);
  const size_t pool_bytes = db.buffer_pool()->pool_bytes();
  ASSERT_GT(paged->data_bytes(), 10 * pool_bytes)
      << "table must dwarf the pool for the test to mean anything";

  // Random-ish point queries across the whole key range: every probe
  // faults index and heap pages through the pool.
  Executor exec(&db);
  for (size_t i = 0; i < 200; ++i) {
    const size_t target = (i * 104729) % kRows;  // prime stride covers the range
    auto result = exec.ExecuteSql(
        StrFormat("SELECT objid, ra FROM photoprimary WHERE objid = %lld",
                  (long long)SyntheticObjId(target)));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_EQ(result->row_count(), 1u) << "probe " << i << " missed";
  }
  EXPECT_EQ(exec.stats().index_scans, 200u);

  const BufferPool::Stats stats = db.buffer_pool()->stats();
  EXPECT_GT(stats.evictions, 0u) << "pool never evicted: table fit in memory?";
  EXPECT_GT(stats.writebacks, 0u) << "population never wrote dirty pages back";

  const size_t peak = PeakRssBytes();
  // The cap leaves room for the binary, gtest, the row directory and the
  // population scratch, but sits far below the ~100+ MiB the in-memory
  // backend needs for this row count.
  constexpr size_t kCapBytes = 96ull << 20;
  EXPECT_LT(peak, kCapBytes)
      << "paged engine peak RSS " << (peak >> 20) << " MiB exceeds the "
      << (kCapBytes >> 20) << " MiB budget (pool is only "
      << (pool_bytes >> 20) << " MiB)";
  // The sharper claim: peak RSS stays below the serialized table itself.
  EXPECT_LT(peak, paged->data_bytes());
}

}  // namespace
}  // namespace sqlog::engine
