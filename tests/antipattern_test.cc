#include "core/antipattern.h"

#include <gtest/gtest.h>

#include "util/string_util.h"

namespace sqlog::core {
namespace {

struct Entry {
  const char* user;
  int64_t time_ms;
  std::string sql;
};

class AntipatternTest : public ::testing::Test {
 protected:
  AntipatternReport Detect(const std::vector<Entry>& entries,
                           DetectorOptions options = MakeOptions()) {
    store_ = TemplateStore();
    log::QueryLog log;
    for (const auto& entry : entries) {
      log::LogRecord record;
      record.user = entry.user;
      record.timestamp_ms = entry.time_ms;
      record.statement = entry.sql;
      log.Append(record);
    }
    log.Renumber();
    parsed_ = ParseLog(log, store_);
    schema_ = catalog::MakeSkyServerSchema();
    return DetectAntipatterns(parsed_, store_, &schema_, options);
  }

  static DetectorOptions MakeOptions() {
    DetectorOptions options;
    options.cth_min_support = 1;
    return options;
  }

  TemplateStore store_;
  ParsedLog parsed_;
  catalog::Schema schema_;
};

TEST_F(AntipatternTest, DetectsDwStifleOfExample9) {
  auto report = Detect({
      {"u", 0, "SELECT name FROM Employee WHERE empId = 8"},
      {"u", 1000, "SELECT name FROM Employee WHERE empId = 1"},
  });
  ASSERT_EQ(report.instances.size(), 1u);
  EXPECT_EQ(report.instances[0].type, AntipatternType::kDwStifle);
  EXPECT_EQ(report.instances[0].query_indices.size(), 2u);
  EXPECT_EQ(report.CountDistinct(AntipatternType::kDwStifle), 1u);
}

TEST_F(AntipatternTest, DwRunExtendsGreedily) {
  std::vector<Entry> entries;
  for (int i = 0; i < 6; ++i) {
    entries.push_back({"u", i * 1000,
                       StrFormat("SELECT name FROM Employee WHERE empId = %d", i)});
  }
  auto report = Detect(entries);
  ASSERT_EQ(report.CountInstances(AntipatternType::kDwStifle), 1u);
  EXPECT_EQ(report.instances[0].query_indices.size(), 6u);
}

TEST_F(AntipatternTest, DetectsDsStifleOfExample11) {
  auto report = Detect({
      {"u", 0, "SELECT name FROM Employee WHERE empId = 8"},
      {"u", 1000, "SELECT address, phone FROM Employee WHERE empId = 8"},
  });
  ASSERT_EQ(report.CountInstances(AntipatternType::kDsStifle), 1u);
}

TEST_F(AntipatternTest, DetectsDfStifleOfExample13) {
  auto report = Detect({
      {"u", 0, "SELECT name FROM Employee WHERE empId = 8"},
      {"u", 1000, "SELECT address FROM EmployeeInfo WHERE empId = 8"},
  });
  ASSERT_EQ(report.CountInstances(AntipatternType::kDfStifle), 1u);
}

TEST_F(AntipatternTest, NonKeyFilterColumnIsNotStifle) {
  // department is not a key attribute (Def. 11 axiom 3).
  auto report = Detect({
      {"u", 0, "SELECT empId FROM Employees WHERE department = 'sales'"},
      {"u", 1000, "SELECT empId FROM Employees WHERE department = 'hr'"},
  });
  EXPECT_EQ(report.CountInstances(AntipatternType::kDwStifle), 0u);
}

TEST_F(AntipatternTest, DisablingKeyCheckAdmitsNonKeyColumns) {
  DetectorOptions options = MakeOptions();
  options.require_key_attribute = false;
  auto report = Detect(
      {
          {"u", 0, "SELECT empId FROM Employees WHERE department = 'sales'"},
          {"u", 1000, "SELECT empId FROM Employees WHERE department = 'hr'"},
      },
      options);
  EXPECT_EQ(report.CountInstances(AntipatternType::kDwStifle), 1u);
}

TEST_F(AntipatternTest, TwoPredicatesAreNotStifle) {
  auto report = Detect({
      {"u", 0, "SELECT name FROM Employee WHERE empId = 8 AND name = 'x'"},
      {"u", 1000, "SELECT name FROM Employee WHERE empId = 1 AND name = 'y'"},
  });
  EXPECT_EQ(report.CountInstances(AntipatternType::kDwStifle), 0u);
}

TEST_F(AntipatternTest, RangePredicateIsNotStifle) {
  auto report = Detect({
      {"u", 0, "SELECT name FROM Employee WHERE empId > 8"},
      {"u", 1000, "SELECT name FROM Employee WHERE empId > 1"},
  });
  EXPECT_EQ(report.CountInstances(AntipatternType::kDwStifle), 0u);
}

TEST_F(AntipatternTest, DifferentUsersDoNotFormOneInstance) {
  auto report = Detect({
      {"a", 0, "SELECT name FROM Employee WHERE empId = 8"},
      {"b", 1000, "SELECT name FROM Employee WHERE empId = 1"},
  });
  EXPECT_EQ(report.CountInstances(AntipatternType::kDwStifle), 0u);
}

TEST_F(AntipatternTest, GapBreaksInstance) {
  DetectorOptions options = MakeOptions();
  options.max_gap_ms = 5000;
  auto report = Detect(
      {
          {"u", 0, "SELECT name FROM Employee WHERE empId = 8"},
          {"u", 60000, "SELECT name FROM Employee WHERE empId = 1"},
      },
      options);
  EXPECT_EQ(report.CountInstances(AntipatternType::kDwStifle), 0u);
}

TEST_F(AntipatternTest, Table1FormsCthCandidate) {
  auto report = Detect({
      {"u", 0, "SELECT E.empId FROM Employees E WHERE E.department = 'sales'"},
      {"u", 3000, "SELECT E.name, E.surname FROM Employees E WHERE E.id = 12"},
      {"u", 5500, "SELECT E.birthday, E.phone FROM Employees E WHERE E.id = 12"},
      {"u", 8000, "SELECT count(orders) FROM Orders O WHERE O.empId = 12"},
  });
  ASSERT_EQ(report.CountInstances(AntipatternType::kCthCandidate), 1u);
  // The chain covers all four queries.
  const AntipatternInstance* cth = nullptr;
  for (const auto& instance : report.instances) {
    if (instance.type == AntipatternType::kCthCandidate) cth = &instance;
  }
  ASSERT_NE(cth, nullptr);
  EXPECT_EQ(cth->query_indices.size(), 4u);
  // Queries 2 and 3 also form a DS-Stifle (Table 2 double-labelling).
  EXPECT_EQ(report.CountInstances(AntipatternType::kDsStifle), 1u);
}

TEST_F(AntipatternTest, CthNeedsLinkedAttribute) {
  // The follow-up filters on an attribute the head never exposed.
  auto report = Detect({
      {"u", 0, "SELECT E.name FROM Employees E WHERE E.department = 'sales'"},
      {"u", 3000, "SELECT count(orders) FROM Orders O WHERE O.empId = 12"},
  });
  EXPECT_EQ(report.CountInstances(AntipatternType::kCthCandidate), 0u);
}

TEST_F(AntipatternTest, StarHeadLinksAnyFollowup) {
  auto report = Detect({
      {"u", 0, "SELECT * FROM dbo.fGetNearestObjEq(145.38, 0.12, 0.1)"},
      {"u", 100, "SELECT plate, fiberID, mjd FROM SpecObjAll WHERE SpecObjID = 75094094447116288"},
  });
  EXPECT_EQ(report.CountInstances(AntipatternType::kCthCandidate), 1u);
}

TEST_F(AntipatternTest, CthRequiresDifferentTemplates) {
  // SQ1 = SQ2 (Def. 15 violated): this is a DW-Stifle, not a CTH.
  auto report = Detect({
      {"u", 0, "SELECT name FROM Employee WHERE empId = 8"},
      {"u", 1000, "SELECT name FROM Employee WHERE empId = 1"},
  });
  EXPECT_EQ(report.CountInstances(AntipatternType::kCthCandidate), 0u);
}

TEST_F(AntipatternTest, CthSupportThresholdDropsOneOffs) {
  DetectorOptions options = MakeOptions();
  options.cth_min_support = 2;
  auto report = Detect(
      {
          {"u", 0, "SELECT * FROM dbo.fGetNearestObjEq(1.0, 2.0, 0.1)"},
          {"u", 100, "SELECT plate FROM SpecObjAll WHERE SpecObjID = 123"},
      },
      options);
  EXPECT_EQ(report.CountInstances(AntipatternType::kCthCandidate), 0u);
}

TEST_F(AntipatternTest, DetectsSnc) {
  auto report = Detect({
      {"u", 0, "SELECT * FROM Bugs WHERE assigned_to = NULL"},
      {"u", 100000000, "SELECT * FROM Bugs WHERE assigned_to <> NULL"},
  });
  EXPECT_EQ(report.CountInstances(AntipatternType::kSnc), 2u);
  // Same template for `=`-form occurrences; `<>` is a different one.
  EXPECT_EQ(report.CountDistinct(AntipatternType::kSnc), 2u);
}

TEST_F(AntipatternTest, ProperIsNullIsNotSnc) {
  auto report = Detect({
      {"u", 0, "SELECT * FROM Bugs WHERE assigned_to IS NULL"},
  });
  EXPECT_EQ(report.CountInstances(AntipatternType::kSnc), 0u);
}

TEST_F(AntipatternTest, SolvableInstancesClaimQueriesFirst) {
  auto report = Detect({
      {"u", 0, "SELECT E.empId FROM Employees E WHERE E.department = 'sales'"},
      {"u", 3000, "SELECT E.name, E.surname FROM Employees E WHERE E.id = 12"},
      {"u", 5500, "SELECT E.birthday, E.phone FROM Employees E WHERE E.id = 12"},
      {"u", 8000, "SELECT count(orders) FROM Orders O WHERE O.empId = 12"},
  });
  // Queries 1 and 2 (0-based) belong to both DS and CTH; the map must
  // point at the solvable DS instance.
  uint32_t ds_instance = 0;
  for (size_t k = 0; k < report.instances.size(); ++k) {
    if (report.instances[k].type == AntipatternType::kDsStifle) {
      ds_instance = static_cast<uint32_t>(k + 1);
    }
  }
  ASSERT_NE(ds_instance, 0u);
  EXPECT_EQ(report.instance_of_query[1], ds_instance);
  EXPECT_EQ(report.instance_of_query[2], ds_instance);
  // The head and tail belong to the CTH candidate.
  EXPECT_NE(report.instance_of_query[0], 0u);
  EXPECT_NE(report.instance_of_query[0], ds_instance);
}

TEST_F(AntipatternTest, DistinctAggregationMergesInstances) {
  auto report = Detect({
      {"u", 0, "SELECT name FROM Employee WHERE empId = 8"},
      {"u", 1000, "SELECT name FROM Employee WHERE empId = 1"},
      {"u", 100000000, "SELECT name FROM Employee WHERE empId = 3"},
      {"u", 100001000, "SELECT name FROM Employee WHERE empId = 4"},
  });
  EXPECT_EQ(report.CountInstances(AntipatternType::kDwStifle), 2u);
  EXPECT_EQ(report.CountDistinct(AntipatternType::kDwStifle), 1u);
  EXPECT_EQ(report.CountQueries(AntipatternType::kDwStifle), 4u);
}

TEST_F(AntipatternTest, TypeNamesAndSolvability) {
  EXPECT_STREQ(AntipatternTypeName(AntipatternType::kDwStifle), "DW-Stifle");
  EXPECT_STREQ(AntipatternTypeName(AntipatternType::kCthCandidate), "CTH");
  EXPECT_TRUE(IsSolvable(AntipatternType::kDwStifle));
  EXPECT_TRUE(IsSolvable(AntipatternType::kDsStifle));
  EXPECT_TRUE(IsSolvable(AntipatternType::kDfStifle));
  EXPECT_TRUE(IsSolvable(AntipatternType::kSnc));
  EXPECT_FALSE(IsSolvable(AntipatternType::kCthCandidate));
}

TEST_F(AntipatternTest, NullSchemaSkipsKeyAxiom) {
  store_ = TemplateStore();
  log::QueryLog log;
  for (int i = 0; i < 2; ++i) {
    log::LogRecord record;
    record.user = "u";
    record.timestamp_ms = i * 1000;
    record.statement = StrFormat("SELECT a FROM unknown_table WHERE somecol = %d", i);
    log.Append(record);
  }
  log.Renumber();
  parsed_ = ParseLog(log, store_);
  auto report = DetectAntipatterns(parsed_, store_, nullptr, MakeOptions());
  EXPECT_EQ(report.CountInstances(AntipatternType::kDwStifle), 1u);
}

}  // namespace
}  // namespace sqlog::core
