// Equivalence battery for the storage backends: the same rows pushed
// through MemoryTable and PagedTable must read back identically cell by
// cell, and the same queries over a memory and a paged database — with
// and without index scans — must produce byte-identical result text.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/database.h"
#include "engine/executor.h"
#include "engine/table_heap.h"
#include "util/random.h"
#include "util/string_util.h"

namespace sqlog::engine {
namespace {

Value RandomValue(Rng& rng) {
  switch (rng.Uniform(4)) {
    case 0: return Value::Null();
    case 1: return Value::Int(static_cast<int64_t>(rng.Uniform(1u << 31)) - (1 << 30));
    case 2: return Value::Real(rng.NextDouble() * 1e6 - 5e5);
    default:
      return Value::Str(std::string(rng.Uniform(64), 'x') +
                        StrFormat("%llu", (unsigned long long)rng.Uniform(1000000)));
  }
}

void ExpectSameCell(const Value& a, const Value& b, size_t row, size_t col) {
  ASSERT_EQ(a.kind(), b.kind()) << "kind mismatch at (" << row << "," << col << ")";
  if (!a.is_null()) {
    EXPECT_EQ(a.ToString(), b.ToString())
        << "value mismatch at (" << row << "," << col << ")";
  }
}

TEST(StorageTest, PagedMatchesMemoryCellForCell) {
  PageFile file;
  ASSERT_TRUE(file.Open("").ok());
  // 8 pages: far fewer than the ~3000 rows of mixed-width data need, so
  // reads after population all go through eviction + re-fetch.
  BufferPool pool(&file, 8);

  MemoryTable mem("t");
  PagedTable paged("t", &pool);
  for (Table* t : {static_cast<Table*>(&mem), static_cast<Table*>(&paged)}) {
    ASSERT_TRUE(t->AddColumn("a", Value::Kind::kInt64).ok());
    ASSERT_TRUE(t->AddColumn("b", Value::Kind::kDouble).ok());
    ASSERT_TRUE(t->AddColumn("c", Value::Kind::kString).ok());
    ASSERT_TRUE(t->AddColumn("d", Value::Kind::kInt64).ok());
  }

  Rng rng(99);
  constexpr size_t kRows = 3000;
  for (size_t i = 0; i < kRows; ++i) {
    std::vector<Value> row = {RandomValue(rng), RandomValue(rng), RandomValue(rng),
                              RandomValue(rng)};
    ASSERT_TRUE(mem.AppendRow(row).ok());
    ASSERT_TRUE(paged.AppendRow(std::move(row)).ok());
  }

  ASSERT_EQ(paged.row_count(), kRows);
  ASSERT_GT(paged.page_count(), 8u) << "table must outgrow the pool";
  EXPECT_GT(pool.stats().evictions, 0u);

  for (size_t r = 0; r < kRows; ++r) {
    for (size_t c = 0; c < 4; ++c) {
      ExpectSameCell(mem.CellAt(r, c), paged.CellAt(r, c), r, c);
    }
    std::vector<Value> mrow;
    std::vector<Value> prow;
    ASSERT_TRUE(mem.GetRow(r, &mrow).ok());
    ASSERT_TRUE(paged.GetRow(r, &prow).ok());
    ASSERT_EQ(mrow.size(), prow.size());
    for (size_t c = 0; c < mrow.size(); ++c) ExpectSameCell(mrow[c], prow[c], r, c);
  }

  // Backend identity checks.
  EXPECT_EQ(mem.storage_mode(), StorageMode::kMemory);
  EXPECT_EQ(paged.storage_mode(), StorageMode::kPaged);
  EXPECT_NE(mem.CellPtr(0, 0), nullptr);
  EXPECT_EQ(paged.CellPtr(0, 0), nullptr);
}

TEST(StorageTest, StringsRoundTripAcrossPageBoundaries) {
  PageFile file;
  ASSERT_TRUE(file.Open("").ok());
  BufferPool pool(&file, 4);
  PagedTable t("t", &pool);
  ASSERT_TRUE(t.AddColumn("s", Value::Kind::kString).ok());
  // ~1.5 KiB strings: five rows per 8 KiB page, with embedded NUL and
  // non-ASCII bytes to catch any text-based serialization shortcuts.
  std::vector<std::string> originals;
  for (int i = 0; i < 40; ++i) {
    std::string s(1500, static_cast<char>('A' + i % 26));
    s[3] = '\0';
    s[7] = static_cast<char>(0xE9);
    s += std::to_string(i);
    originals.push_back(s);
    ASSERT_TRUE(t.AppendRow({Value::Str(s)}).ok());
  }
  ASSERT_GT(t.page_count(), 4u);
  for (int i = 39; i >= 0; --i) {  // reverse order: defeats page locality
    Value v = t.CellAt(static_cast<size_t>(i), 0);
    ASSERT_EQ(v.kind(), Value::Kind::kString);
    EXPECT_EQ(v.AsString(), originals[static_cast<size_t>(i)]);
  }
}

TEST(StorageTest, PagedTableRejectsOversizedRow) {
  PageFile file;
  ASSERT_TRUE(file.Open("").ok());
  BufferPool pool(&file, 4);
  PagedTable t("t", &pool);
  ASSERT_TRUE(t.AddColumn("s", Value::Kind::kString).ok());
  EXPECT_FALSE(t.AppendRow({Value::Str(std::string(kPageSize, 'x'))}).ok());
  EXPECT_EQ(t.row_count(), 0u);
  // The table still works after the rejection.
  ASSERT_TRUE(t.AppendRow({Value::Str("ok")}).ok());
  EXPECT_EQ(t.CellAt(0, 0).AsString(), "ok");
}

TEST(StorageTest, DatabaseDefaultsToMemoryAndHonorsPagedMode) {
  Database mem_db;
  auto t1 = mem_db.CreateTable("t", {{"a", Value::Kind::kInt64}});
  ASSERT_TRUE(t1.ok());
  EXPECT_EQ(t1.value()->storage_mode(), StorageMode::kMemory);
  EXPECT_EQ(mem_db.buffer_pool(), nullptr) << "memory db must not open a pool";

  DatabaseOptions options;
  options.storage = StorageMode::kPaged;
  options.buffer_pool_pages = 16;
  Database paged_db(options);
  auto t2 = paged_db.CreateTable("t", {{"a", Value::Kind::kInt64}});
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(t2.value()->storage_mode(), StorageMode::kPaged);
  ASSERT_NE(paged_db.buffer_pool(), nullptr);
  EXPECT_EQ(paged_db.buffer_pool()->pool_pages(), 16u);
}

/// The main correctness gate for the index-scan path: a matrix of
/// {memory, paged} x {indexes on, indexes off} must print the exact
/// same bytes for a spread of SkyServer-shaped queries, and the stats
/// must show the index configurations actually took the index path.
TEST(StorageTest, QueriesAreByteIdenticalAcrossBackendsAndAccessPaths) {
  constexpr size_t kRows = 500;
  Database mem_db;
  ASSERT_TRUE(PopulateSkyServerSample(mem_db, kRows).ok());

  DatabaseOptions options;
  options.storage = StorageMode::kPaged;
  options.buffer_pool_pages = 64;  // 512 KiB: smaller than the sample
  Database paged_db(options);
  ASSERT_TRUE(PopulateSkyServerSample(paged_db, kRows).ok());
  ASSERT_TRUE(paged_db.CreateIndex("photoprimary", "objid").ok());
  ASSERT_TRUE(mem_db.CreateIndex("photoprimary", "objid").ok());

  const int64_t hit = SyntheticObjId(123);
  const int64_t hit2 = SyntheticObjId(321);
  const std::vector<std::string> queries = {
      StrFormat("SELECT objid, ra, dec FROM photoprimary WHERE objid = %lld",
                (long long)hit),
      StrFormat("SELECT objid FROM photoprimary WHERE objid IN (%lld, %lld, 17)",
                (long long)hit, (long long)hit2),
      StrFormat("SELECT count(*) FROM photoprimary WHERE objid = %lld AND ra >= 0",
                (long long)hit),
      // Missing key: index scan must agree with the empty full scan.
      "SELECT objid FROM photoprimary WHERE objid = 12345",
      // No usable conjunct: everything falls back to the full scan.
      "SELECT TOP 5 objid FROM photoprimary WHERE ra BETWEEN 10 AND 30 ORDER BY objid",
  };

  ExecutorOptions no_index;
  no_index.use_indexes = false;
  Executor baseline(&mem_db, no_index);
  Executor mem_indexed(&mem_db);
  Executor paged_indexed(&paged_db);
  Executor paged_plain(&paged_db, no_index);

  for (const std::string& sql : queries) {
    auto expect = baseline.ExecuteSql(sql);
    ASSERT_TRUE(expect.ok()) << sql << ": " << expect.status().ToString();
    const std::string want = expect->ToText(1000);
    for (Executor* exec : {&mem_indexed, &paged_indexed, &paged_plain}) {
      auto got = exec->ExecuteSql(sql);
      ASSERT_TRUE(got.ok()) << sql << ": " << got.status().ToString();
      EXPECT_EQ(got->ToText(1000), want) << sql;
    }
  }

  EXPECT_GT(mem_indexed.stats().index_scans, 0u);
  EXPECT_GT(paged_indexed.stats().index_scans, 0u);
  EXPECT_EQ(baseline.stats().index_scans, 0u);
  EXPECT_GT(baseline.stats().full_scans, 0u);
}

TEST(StorageTest, IndexOnUnsortedColumnStillAnswersLookups) {
  // CreateIndex takes the insert (non-bulk) path when keys are not
  // sorted; lookups must behave the same.
  Database db;
  auto t = db.CreateTable("ev", {{"k", Value::Kind::kInt64}});
  ASSERT_TRUE(t.ok());
  const int64_t keys[] = {50, 10, 30, 10, 40, 20, 10};
  for (int64_t k : keys) {
    ASSERT_TRUE(t.value()->AppendRow({Value::Int(k)}).ok());
  }
  ASSERT_TRUE(db.CreateIndex("ev", "k").ok());
  const BTreeIndex* index = db.FindIndex("ev", "k");
  ASSERT_NE(index, nullptr);
  std::vector<uint64_t> rows;
  ASSERT_TRUE(index->Lookup(10, &rows).ok());
  EXPECT_EQ(rows, (std::vector<uint64_t>{1, 3, 6}));
  EXPECT_EQ(db.FindIndex("ev", "nope"), nullptr);
  EXPECT_EQ(db.FindIndex("absent", "k"), nullptr);
}

}  // namespace
}  // namespace sqlog::engine
