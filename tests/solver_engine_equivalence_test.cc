// Property tests: every solver rewrite must return the same data as the
// original statement sequence when executed on the in-memory engine.
// This is the semantic guarantee behind "cleaning" — the clean log
// represents the same information needs.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "core/solver.h"
#include "engine/database.h"
#include "engine/executor.h"
#include "sql/skeleton.h"
#include "util/random.h"
#include "util/string_util.h"

namespace sqlog {
namespace {

class SolverEngineEquivalenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new engine::Database();
    ASSERT_TRUE(engine::PopulateSkyServerSample(*db_, 800).ok());
    executor_ = new engine::Executor(db_);
    objids_ = engine::PhotoObjIds(*db_);
  }

  static void TearDownTestSuite() {
    delete executor_;
    delete db_;
    executor_ = nullptr;
    db_ = nullptr;
  }

  static std::vector<core::ParsedQuery> ParseAll(const std::vector<std::string>& sqls) {
    std::vector<core::ParsedQuery> parsed(sqls.size());
    for (size_t i = 0; i < sqls.size(); ++i) {
      auto facts = sql::ParseAndAnalyze(sqls[i]);
      EXPECT_TRUE(facts.ok()) << sqls[i];
      parsed[i].facts = std::move(facts.value());
    }
    return parsed;
  }

  static std::vector<const core::ParsedQuery*> Pointers(
      const std::vector<core::ParsedQuery>& parsed) {
    std::vector<const core::ParsedQuery*> out;
    for (const auto& query : parsed) out.push_back(&query);
    return out;
  }

  /// Executes a statement and returns its rows as a multiset of strings,
  /// with column order preserved.
  static std::multiset<std::string> RowsOf(const std::string& sql) {
    auto result = executor_->ExecuteSql(sql);
    EXPECT_TRUE(result.ok()) << sql << " → " << result.status().ToString();
    std::multiset<std::string> rows;
    if (!result.ok()) return rows;
    for (const auto& row : result->rows) {
      std::string key;
      for (const auto& cell : row) {
        key += cell.ToString();
        key.push_back('\x1f');
      }
      rows.insert(std::move(key));
    }
    return rows;
  }

  static engine::Database* db_;
  static engine::Executor* executor_;
  static std::vector<int64_t> objids_;
};

engine::Database* SolverEngineEquivalenceTest::db_ = nullptr;
engine::Executor* SolverEngineEquivalenceTest::executor_ = nullptr;
std::vector<int64_t> SolverEngineEquivalenceTest::objids_;

TEST_F(SolverEngineEquivalenceTest, DwRewriteOverManySeeds) {
  // Random DW runs: the union of per-query results must equal the
  // rewrite's results, modulo the prepended filter column.
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    size_t run = 2 + rng.Uniform(10);
    std::vector<std::string> originals;
    std::multiset<std::string> expected;
    std::set<int64_t> used;
    for (size_t i = 0; i < run; ++i) {
      int64_t objid = objids_[rng.Uniform(objids_.size())];
      if (!used.insert(objid).second) continue;  // IN dedups; keep sets equal
      originals.push_back(
          StrFormat("SELECT objID, ra, dec FROM photoPrimary WHERE objID = %lld",
                    static_cast<long long>(objid)));
      for (const auto& row : RowsOf(originals.back())) expected.insert(row);
    }
    if (originals.size() < 2) continue;
    auto parsed = ParseAll(originals);
    auto rewritten = core::RewriteDwStifle(Pointers(parsed));
    ASSERT_TRUE(rewritten.ok()) << rewritten.status().ToString();
    // objID is already exposed, so columns line up exactly.
    EXPECT_EQ(RowsOf(rewritten.value()), expected) << "seed " << seed;
  }
}

TEST_F(SolverEngineEquivalenceTest, DsRewriteConcatenatesColumns) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed * 77);
    int64_t objid = objids_[rng.Uniform(objids_.size())];
    std::vector<std::string> originals = {
        StrFormat("SELECT ra, dec FROM photoPrimary WHERE objID = %lld",
                  static_cast<long long>(objid)),
        StrFormat("SELECT rowc_g, colc_g FROM photoPrimary WHERE objID = %lld",
                  static_cast<long long>(objid)),
    };
    auto parsed = ParseAll(originals);
    auto rewritten = core::RewriteDsStifle(Pointers(parsed));
    ASSERT_TRUE(rewritten.ok());

    auto merged = executor_->ExecuteSql(rewritten.value());
    ASSERT_TRUE(merged.ok()) << merged.status().ToString();
    ASSERT_EQ(merged->row_count(), 1u);
    ASSERT_EQ(merged->column_names,
              (std::vector<std::string>{"ra", "dec", "rowc_g", "colc_g"}));

    auto first = executor_->ExecuteSql(originals[0]);
    auto second = executor_->ExecuteSql(originals[1]);
    ASSERT_TRUE(first.ok() && second.ok());
    ASSERT_EQ(first->row_count(), 1u);
    ASSERT_EQ(second->row_count(), 1u);
    EXPECT_EQ(merged->rows[0][0].ToString(), first->rows[0][0].ToString());
    EXPECT_EQ(merged->rows[0][1].ToString(), first->rows[0][1].ToString());
    EXPECT_EQ(merged->rows[0][2].ToString(), second->rows[0][0].ToString());
    EXPECT_EQ(merged->rows[0][3].ToString(), second->rows[0][1].ToString());
  }
}

TEST_F(SolverEngineEquivalenceTest, DfRewriteJoinsTables) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed * 131);
    int64_t objid = objids_[rng.Uniform(objids_.size())];
    std::vector<std::string> originals = {
        StrFormat("SELECT ra, dec FROM photoPrimary WHERE objID = %lld",
                  static_cast<long long>(objid)),
        StrFormat("SELECT run, camcol FROM photoObjAll WHERE objID = %lld",
                  static_cast<long long>(objid)),
    };
    auto parsed = ParseAll(originals);
    auto rewritten = core::RewriteDfStifle(Pointers(parsed));
    ASSERT_TRUE(rewritten.ok()) << rewritten.status().ToString();

    auto merged = executor_->ExecuteSql(rewritten.value());
    ASSERT_TRUE(merged.ok()) << rewritten.value() << " → "
                             << merged.status().ToString();
    ASSERT_EQ(merged->row_count(), 1u);

    auto first = executor_->ExecuteSql(originals[0]);
    auto second = executor_->ExecuteSql(originals[1]);
    ASSERT_TRUE(first.ok() && second.ok());
    ASSERT_EQ(first->row_count(), 1u);
    ASSERT_EQ(second->row_count(), 1u);
    EXPECT_EQ(merged->rows[0][0].ToString(), first->rows[0][0].ToString());
    EXPECT_EQ(merged->rows[0][1].ToString(), first->rows[0][1].ToString());
    EXPECT_EQ(merged->rows[0][2].ToString(), second->rows[0][0].ToString());
    EXPECT_EQ(merged->rows[0][3].ToString(), second->rows[0][1].ToString());
  }
}

TEST_F(SolverEngineEquivalenceTest, SncRewriteFindsTheRowsTheUserMeant) {
  // `= NULL` returns nothing; the rewrite returns the NULL rows.
  auto broken = RowsOf("SELECT bugID FROM Bugs WHERE assigned_to = NULL");
  EXPECT_TRUE(broken.empty());

  auto parsed = ParseAll({"SELECT bugID FROM Bugs WHERE assigned_to = NULL"});
  auto rewritten = core::RewriteSnc(parsed[0]);
  ASSERT_TRUE(rewritten.ok());
  auto fixed = RowsOf(rewritten.value());
  auto expected = RowsOf("SELECT bugID FROM Bugs WHERE assigned_to IS NULL");
  EXPECT_FALSE(fixed.empty());
  EXPECT_EQ(fixed, expected);
}

TEST_F(SolverEngineEquivalenceTest, DwRewriteWithStringKeyColumn) {
  std::vector<std::string> originals = {
      "SELECT description FROM DBObjects WHERE name = 'Galaxy'",
      "SELECT description FROM DBObjects WHERE name = 'Star'",
  };
  std::multiset<std::string> expected;
  for (const auto& sql : originals) {
    auto result = executor_->ExecuteSql(sql);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->row_count(), 1u);
  }
  auto parsed = ParseAll(originals);
  auto rewritten = core::RewriteDwStifle(Pointers(parsed));
  ASSERT_TRUE(rewritten.ok());
  auto merged = executor_->ExecuteSql(rewritten.value());
  ASSERT_TRUE(merged.ok()) << rewritten.value() << " → " << merged.status().ToString();
  EXPECT_EQ(merged->row_count(), 2u);
}

}  // namespace
}  // namespace sqlog
