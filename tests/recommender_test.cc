#include "analysis/recommender.h"

#include <gtest/gtest.h>

#include "util/string_util.h"

namespace sqlog::analysis {
namespace {

struct Entry {
  const char* user;
  int64_t time_ms;
  std::string sql;
};

core::ParsedLog BuildParsedLog(const std::vector<Entry>& entries,
                               core::TemplateStore& store) {
  log::QueryLog log;
  for (const auto& entry : entries) {
    log::LogRecord record;
    record.user = entry.user;
    record.timestamp_ms = entry.time_ms;
    record.statement = entry.sql;
    log.Append(record);
  }
  log.Renumber();
  return core::ParseLog(log, store);
}

uint64_t FingerprintOf(const std::string& sql) {
  auto facts = sqlog::sql::ParseAndAnalyze(sql);
  EXPECT_TRUE(facts.ok()) << sql;
  return facts->tmpl.fingerprint;
}

TEST(RecommenderTest, LearnsDominantTransition) {
  core::TemplateStore store;
  std::vector<Entry> entries;
  int64_t t = 0;
  for (int i = 0; i < 10; ++i) {
    entries.push_back({"u", t += 1000, StrFormat("SELECT a FROM t WHERE id = %d", i)});
    entries.push_back({"u", t += 1000, StrFormat("SELECT b FROM t WHERE id = %d", i)});
  }
  core::ParsedLog parsed = BuildParsedLog(entries, store);

  Recommender model;
  model.Train(parsed);
  uint64_t a = FingerprintOf("SELECT a FROM t WHERE id = 1");
  uint64_t b = FingerprintOf("SELECT b FROM t WHERE id = 1");
  auto top = model.Recommend(a, 1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0], b);
}

TEST(RecommenderTest, UnknownSourceYieldsNothing) {
  Recommender model;
  EXPECT_TRUE(model.Recommend(12345, 3).empty());
}

TEST(RecommenderTest, TopKOrdersByFrequency) {
  core::TemplateStore store;
  std::vector<Entry> entries;
  int64_t t = 0;
  // a→b three times, a→c once.
  for (int i = 0; i < 3; ++i) {
    entries.push_back({"u", t += 1000, "SELECT a FROM t WHERE id = 1"});
    entries.push_back({"u", t += 1000, "SELECT b FROM t WHERE id = 1"});
  }
  entries.push_back({"u", t += 1000, "SELECT a FROM t WHERE id = 1"});
  entries.push_back({"u", t += 1000, "SELECT c FROM t WHERE id = 1"});
  core::ParsedLog parsed = BuildParsedLog(entries, store);

  Recommender model;
  model.Train(parsed);
  auto top = model.Recommend(FingerprintOf("SELECT a FROM t WHERE id = 9"), 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], FingerprintOf("SELECT b FROM t WHERE id = 9"));
  EXPECT_EQ(top[1], FingerprintOf("SELECT c FROM t WHERE id = 9"));
}

TEST(RecommenderTest, GapBoundsTransitions) {
  core::TemplateStore store;
  std::vector<Entry> entries = {
      {"u", 0, "SELECT a FROM t WHERE id = 1"},
      {"u", 100000000, "SELECT b FROM t WHERE id = 1"},  // different session
  };
  core::ParsedLog parsed = BuildParsedLog(entries, store);
  Recommender model;
  model.Train(parsed);
  EXPECT_EQ(model.transition_count(), 0u);
}

TEST(RecommenderTest, UsersDoNotLeakTransitions) {
  core::TemplateStore store;
  std::vector<Entry> entries = {
      {"a", 0, "SELECT a FROM t WHERE id = 1"},
      {"b", 1000, "SELECT b FROM t WHERE id = 1"},
  };
  core::ParsedLog parsed = BuildParsedLog(entries, store);
  Recommender model;
  model.Train(parsed);
  EXPECT_EQ(model.transition_count(), 0u);
}

TEST(RecommenderTest, HitRatePerfectOnTrainingDistribution) {
  core::TemplateStore store;
  std::vector<Entry> entries;
  int64_t t = 0;
  for (int i = 0; i < 5; ++i) {
    entries.push_back({"u", t += 1000, StrFormat("SELECT a FROM t WHERE id = %d", i)});
    entries.push_back({"u", t += 1000, StrFormat("SELECT b FROM t WHERE id = %d", i)});
    // A pause so only a→b transitions are counted (no b→a seam).
    t += 100000000;
  }
  core::ParsedLog parsed = BuildParsedLog(entries, store);
  Recommender model;
  model.Train(parsed);
  EXPECT_DOUBLE_EQ(model.HitRate(parsed, 1), 1.0);
}

TEST(RecommenderTest, FlaggedRecommendationRate) {
  core::TemplateStore store;
  std::vector<Entry> entries;
  int64_t t = 0;
  for (int i = 0; i < 4; ++i) {
    entries.push_back({"u", t += 1000, StrFormat("SELECT a FROM t WHERE id = %d", i)});
    entries.push_back({"u", t += 1000, StrFormat("SELECT b FROM t WHERE id = %d", i)});
    t += 100000000;
  }
  core::ParsedLog parsed = BuildParsedLog(entries, store);
  Recommender model;
  model.Train(parsed);

  std::unordered_set<uint64_t> flagged = {FingerprintOf("SELECT b FROM t WHERE id = 0")};
  EXPECT_DOUBLE_EQ(model.FlaggedRecommendationRate(parsed, flagged), 1.0);
  EXPECT_DOUBLE_EQ(model.FlaggedRecommendationRate(parsed, {}), 0.0);
}

TEST(RecommenderTest, EmptyEvalIsZero) {
  Recommender model;
  core::TemplateStore store;
  core::ParsedLog parsed = BuildParsedLog({}, store);
  EXPECT_DOUBLE_EQ(model.HitRate(parsed, 3), 0.0);
}

}  // namespace
}  // namespace sqlog::analysis
