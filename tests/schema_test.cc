#include "catalog/schema.h"

#include <gtest/gtest.h>

namespace sqlog::catalog {
namespace {

TEST(SchemaTest, AddAndFindTableCaseInsensitive) {
  Schema schema;
  TableDef table("PhotoPrimary");
  table.AddColumn("ObjID", ColumnType::kInt64, /*is_key=*/true);
  schema.AddTable(std::move(table));

  EXPECT_NE(schema.FindTable("photoprimary"), nullptr);
  EXPECT_NE(schema.FindTable("PHOTOPRIMARY"), nullptr);
  EXPECT_EQ(schema.FindTable("missing"), nullptr);
}

TEST(SchemaTest, ColumnLookupCaseInsensitive) {
  TableDef table("t");
  table.AddColumn("ObjID", ColumnType::kInt64, true).AddColumn("ra", ColumnType::kDouble);
  const ColumnDef* col = table.FindColumn("OBJID");
  ASSERT_NE(col, nullptr);
  EXPECT_TRUE(col->is_key);
  EXPECT_EQ(col->type, ColumnType::kInt64);
  EXPECT_EQ(table.FindColumn("missing"), nullptr);
}

TEST(SchemaTest, ReRegisteringReplaces) {
  Schema schema;
  TableDef v1("t");
  v1.AddColumn("a", ColumnType::kInt64);
  schema.AddTable(std::move(v1));
  TableDef v2("T");
  v2.AddColumn("b", ColumnType::kInt64);
  schema.AddTable(std::move(v2));
  EXPECT_EQ(schema.table_count(), 1u);
  EXPECT_EQ(schema.FindTable("t")->FindColumn("a"), nullptr);
  EXPECT_NE(schema.FindTable("t")->FindColumn("b"), nullptr);
}

TEST(SchemaTest, IsKeyColumnWithTableList) {
  Schema schema = MakeSkyServerSchema();
  EXPECT_TRUE(schema.IsKeyColumn("objid", {"photoprimary"}));
  EXPECT_TRUE(schema.IsKeyColumn("OBJID", {"PhotoPrimary"}));
  EXPECT_FALSE(schema.IsKeyColumn("ra", {"photoprimary"}));
  EXPECT_FALSE(schema.IsKeyColumn("objid", {"dbobjects"}));
}

TEST(SchemaTest, IsKeyColumnUnknownTablesAreSkipped) {
  Schema schema = MakeSkyServerSchema();
  EXPECT_FALSE(schema.IsKeyColumn("objid", {"nonexistent"}));
  EXPECT_TRUE(schema.IsKeyColumn("objid", {"nonexistent", "photoprimary"}));
}

TEST(SchemaTest, IsKeyColumnEmptyTableListSearchesAll) {
  Schema schema = MakeSkyServerSchema();
  EXPECT_TRUE(schema.IsKeyColumn("objid", {}));
  EXPECT_TRUE(schema.IsKeyColumn("specobjid", {}));
  EXPECT_FALSE(schema.IsKeyColumn("ra", {}));
}

TEST(SchemaTest, SkyServerSchemaShape) {
  Schema schema = MakeSkyServerSchema();
  // The tables the case study's queries touch must exist.
  for (const char* name : {"photoprimary", "photoobjall", "specobj", "specobjall",
                           "dbobjects", "galaxy", "employees", "employee", "employeeinfo",
                           "orders", "bugs"}) {
    EXPECT_NE(schema.FindTable(name), nullptr) << name;
  }
  // Per-band centroid columns of Table 6.
  const TableDef* photo = schema.FindTable("photoprimary");
  for (const char* col : {"rowc_g", "colc_g", "rowc_r", "colc_r", "rowc_i", "colc_i"}) {
    EXPECT_NE(photo->FindColumn(col), nullptr) << col;
  }
  // dbobjects.name is the key the CTH-candidate queries filter on.
  EXPECT_TRUE(schema.IsKeyColumn("name", {"dbobjects"}));
  // bugs.assigned_to must be nullable (the SNC setup).
  EXPECT_TRUE(schema.FindTable("bugs")->FindColumn("assigned_to")->nullable);
}

TEST(SchemaTest, EmployeesKeysMatchPaperExamples) {
  Schema schema = MakeSkyServerSchema();
  // Table 1 filters Employees by id and Orders by empId (foreign key);
  // Example 9 filters Employee by empId.
  EXPECT_TRUE(schema.IsKeyColumn("id", {"employees"}));
  EXPECT_TRUE(schema.IsKeyColumn("empid", {"employees"}));
  EXPECT_TRUE(schema.IsKeyColumn("empid", {"employee"}));
}

}  // namespace
}  // namespace sqlog::catalog
